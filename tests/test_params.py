"""Unit tests for SimParams (Table 1)."""

import pytest

from repro.params import PAPER_PARAMS, SimParams, cni_params, standard_interface_params


def test_table1_defaults():
    p = PAPER_PARAMS
    assert p.cpu_freq_hz == 166e6
    assert p.l1_size_bytes == 32 * 1024
    assert p.l2_size_bytes == 1024 * 1024
    assert p.l1_access_cycles == 1
    assert p.l2_access_cycles == 10
    assert p.memory_latency_cycles == 20
    assert p.bus_acquisition_cycles == 4
    assert p.bus_cycles_per_word == 2
    assert p.bus_freq_hz == 25e6
    assert p.switch_latency_ns == 500.0
    assert p.ni_freq_hz == 33e6
    assert p.message_cache_bytes == 32 * 1024


def test_derived_clocks():
    p = PAPER_PARAMS
    assert p.cpu_cycle_ns == pytest.approx(6.024, rel=1e-3)
    assert p.bus_cycle_ns == pytest.approx(40.0)
    assert p.ni_cycle_ns == pytest.approx(30.3, rel=1e-2)


def test_dma_time_for_page():
    # 4 KB = 512 words: 4 + 1024 = 1028 bus cycles = 41.12 us
    assert PAPER_PARAMS.dma_time_ns(4096) == pytest.approx(41120.0)


def test_dma_time_rounds_partial_words():
    assert PAPER_PARAMS.dma_time_ns(1) == pytest.approx((4 + 2) * 40.0)


def test_cell_count_aal5():
    p = PAPER_PARAMS
    # 4096 + 8 trailer = 4104 bytes over 48-byte payloads = 86 cells
    assert p.cells_for_packet(4096) == 86
    assert p.cells_for_packet(0) == 1
    assert p.cells_for_packet(40) == 1
    assert p.cells_for_packet(41) == 2


def test_unrestricted_cell_size():
    p = PAPER_PARAMS.replace(unrestricted_cell_size=True)
    assert p.cells_for_packet(4096) == 1
    assert p.cells_for_packet(10 ** 6) == 1


def test_cell_wire_time():
    # 53 bytes at 622 Mbps = 681.7 ns
    assert PAPER_PARAMS.cell_wire_time_ns == pytest.approx(681.67, rel=1e-3)


def test_geometry_helpers():
    p = PAPER_PARAMS
    assert p.words_per_page == 512
    assert p.lines_per_page == 128
    assert p.message_cache_buffers == 8


def test_replace_validates():
    with pytest.raises(ValueError):
        PAPER_PARAMS.replace(page_size_bytes=1000)
    with pytest.raises(ValueError):
        PAPER_PARAMS.replace(num_processors=0)
    with pytest.raises(ValueError):
        PAPER_PARAMS.replace(message_cache_bytes=1024)  # < one page
    with pytest.raises(ValueError):
        PAPER_PARAMS.replace(cpu_freq_hz=0)


def test_message_cache_zero_is_allowed():
    # ablation: no message cache at all
    p = PAPER_PARAMS.replace(message_cache_bytes=0)
    assert p.message_cache_buffers == 0


def test_standard_interface_strips_cni_features():
    p = standard_interface_params()
    assert not p.use_message_cache
    assert not p.use_adc
    assert not p.use_aih
    assert not p.snoop_enabled
    # hardware is otherwise identical
    assert p.cpu_freq_hz == PAPER_PARAMS.cpu_freq_hz
    assert p.message_cache_bytes == PAPER_PARAMS.message_cache_bytes


def test_cni_params_all_on():
    p = cni_params()
    assert p.use_message_cache and p.use_adc and p.use_aih and p.snoop_enabled


def test_frozen():
    with pytest.raises(Exception):
        PAPER_PARAMS.page_size_bytes = 1  # type: ignore[misc]
