"""Unit tests for snapshot export helpers: node table, aggregation and
JSON rendering."""

import json

from repro.obs import (
    aggregate_nodes,
    format_node_table,
    node_ids,
    per_node_rows,
    snapshot_to_json,
)

SNAP = {
    "engine.events_processed": 10,
    "node0.nic.mcache.hits": 3,
    "node0.nic.tx.packets_sent": 5,
    "node0.bus.snooped_writeback_words": 100,
    "node1.nic.mcache.hits": 4,
    "node1.nic.tx.packets_sent": 6,
    "node1.bus.snooped_writeback_words": 50,
    "node10.nic.mcache.hits": 1,
    "spans.dma_ns": {"count": 7, "sum": 1000.0, "buckets": {"+inf": 7}},
}


def test_node_ids_sorted_numerically():
    assert node_ids(SNAP) == [0, 1, 10]
    assert node_ids({"engine.x": 1}) == []


def test_per_node_rows_fill_missing_with_zero():
    cols = (("hits", "nic.mcache.hits"), ("tx", "nic.tx.packets_sent"))
    assert per_node_rows(SNAP, cols) == [[3, 5], [4, 6], [1, 0]]


def test_aggregate_nodes_sums_and_counts_histograms():
    totals = aggregate_nodes(SNAP)
    assert totals["nic.mcache.hits"] == 8
    assert totals["bus.snooped_writeback_words"] == 150
    assert "engine.events_processed" not in totals   # not per-node
    h = aggregate_nodes({"node0.lat": {"count": 4, "sum": 1.0, "buckets": {}}})
    assert h["lat"] == 4


def test_format_node_table_alignment_and_fallback():
    cols = (("hits", "nic.mcache.hits"),)
    text = format_node_table(SNAP, cols, title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert [l.split()[0] for l in lines[3:]] == ["node0", "node1", "node10"]
    assert "no per-node metrics" in format_node_table({"engine.x": 1})


def test_snapshot_to_json_round_trips():
    doc = json.loads(snapshot_to_json(SNAP, meta={"app": "jacobi"}))
    assert doc["kind"] == "metrics"
    assert doc["meta"]["app"] == "jacobi"
    assert doc["metrics"]["node0.nic.mcache.hits"] == 3
    assert doc["metrics"]["spans.dma_ns"]["count"] == 7
