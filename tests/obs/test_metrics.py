"""Unit tests for the metrics registry: counters, gauges, histograms,
scopes, probes and the dotted-hierarchy merge."""

import json

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_NS,
    MetricError,
    MetricsRegistry,
    private_scope,
)


# -- counters ------------------------------------------------------------------

def test_counter_increments_and_defaults_to_zero():
    r = MetricsRegistry()
    c = r.counter("hits")
    assert c.value == 0
    c.inc()
    c.inc(4)
    assert c.value == 5


def test_counter_rejects_negative_increment():
    c = MetricsRegistry().counter("hits")
    with pytest.raises(MetricError):
        c.inc(-1)


def test_counter_function_sourced_reads_live_state():
    state = {"n": 0}
    c = MetricsRegistry().counter("hits", fn=lambda: state["n"])
    assert c.value == 0
    state["n"] = 7
    assert c.value == 7


def test_counter_function_sourced_rejects_inc():
    c = MetricsRegistry().counter("hits", fn=lambda: 1)
    with pytest.raises(MetricError):
        c.inc()


def test_counter_get_or_create_returns_same_object():
    r = MetricsRegistry()
    assert r.counter("a.b") is r.counter("a.b")


# -- gauges --------------------------------------------------------------------

def test_gauge_set_and_track_max():
    g = MetricsRegistry().gauge("depth")
    g.set(3)
    g.track_max(10)
    g.track_max(2)          # lower: no effect
    assert g.value == 10
    g.set(1)                # set always overwrites
    assert g.value == 1


def test_gauge_function_sourced_rejects_writes():
    g = MetricsRegistry().gauge("depth", fn=lambda: 5)
    assert g.value == 5
    with pytest.raises(MetricError):
        g.set(1)
    with pytest.raises(MetricError):
        g.track_max(9)


# -- histograms ----------------------------------------------------------------

def test_histogram_buckets_and_overflow():
    h = MetricsRegistry().histogram("lat", buckets=(10, 100, 1000))
    for v in (5, 10, 11, 5000):
        h.observe(v)
    snap = h.value
    assert snap["count"] == 4
    assert snap["sum"] == 5026
    assert snap["buckets"] == {"10": 2, "100": 1, "1000": 0, "+inf": 1}


def test_histogram_mean_and_quantile():
    h = MetricsRegistry().histogram("lat", buckets=(10, 100, 1000))
    assert h.mean == 0.0 and h.quantile(0.5) == 0.0
    for v in (1, 2, 3, 500):
        h.observe(v)
    assert h.mean == pytest.approx(126.5)
    assert h.quantile(0.5) == 10       # bucket upper bound
    assert h.quantile(1.0) == 1000
    with pytest.raises(MetricError):
        h.quantile(1.5)


def test_histogram_rejects_bad_buckets():
    r = MetricsRegistry()
    with pytest.raises(MetricError):
        r.histogram("bad", buckets=())
    with pytest.raises(MetricError):
        r.histogram("bad2", buckets=(10, 10))


def test_histogram_default_buckets_are_latency_spectrum():
    h = MetricsRegistry().histogram("lat")
    assert h.bounds == DEFAULT_LATENCY_BUCKETS_NS
    assert h.bounds[0] == 250.0 and h.bounds[-1] == 1_000_000.0


# -- registry semantics --------------------------------------------------------

def test_kind_conflict_raises():
    r = MetricsRegistry()
    r.counter("x")
    with pytest.raises(MetricError):
        r.gauge("x")
    with pytest.raises(MetricError):
        r.histogram("x")


def test_bad_names_rejected():
    r = MetricsRegistry()
    for bad in ("", ".x", "x."):
        with pytest.raises(MetricError):
            r.counter(bad)


def test_names_filters_by_dotted_prefix():
    r = MetricsRegistry()
    for name in ("node0.nic.hits", "node0.bus.dma", "node10.nic.hits"):
        r.counter(name)
    assert r.names("node0") == ["node0.bus.dma", "node0.nic.hits"]
    # "node1" must not match "node10.*"
    assert r.names("node1") == []
    assert "node0.nic.hits" in r
    assert r.get("nope") is None


def test_snapshot_is_plain_json_safe_data():
    r = MetricsRegistry()
    r.counter("c").inc(2)
    r.gauge("g").set(1.5)
    r.histogram("h", buckets=(10,)).observe(3)
    snap = r.snapshot()
    assert snap["c"] == 2 and snap["g"] == 1.5
    assert snap["h"]["count"] == 1
    json.dumps(snap)  # must not raise


def test_as_tree_nests_by_segment():
    r = MetricsRegistry()
    r.counter("node0.nic.hits").inc(3)
    r.gauge("engine.qlen").set(2)
    tree = r.as_tree()
    assert tree["node0"]["nic"]["hits"] == 3
    assert tree["engine"]["qlen"] == 2


def test_probe_runs_before_snapshot_and_is_idempotent():
    r = MetricsRegistry()
    bag = {"late_metric": 4}
    r.add_probe(lambda reg: [
        reg.counter(k, fn=lambda k=k: bag[k]) for k in bag])
    assert r.snapshot()["late_metric"] == 4
    bag["late_metric"] = 9
    assert r.snapshot()["late_metric"] == 9   # second snapshot: no conflict


# -- scopes --------------------------------------------------------------------

def test_scope_prefixes_and_nests():
    r = MetricsRegistry()
    node = r.scope("node3")
    nic = node.scope("nic")
    nic.counter("hits").inc()
    node.gauge("qlen").set(2)
    assert r.snapshot() == {"node3.nic.hits": 1, "node3.qlen": 2}


def test_empty_scope_is_transparent():
    r = MetricsRegistry()
    r.scope("").counter("hits").inc()
    assert "hits" in r


def test_bad_scope_prefix_rejected():
    r = MetricsRegistry()
    with pytest.raises(MetricError):
        r.scope(".x")


def test_private_scope_isolates_components():
    a, b = private_scope(), private_scope()
    a.counter("hits").inc()
    b.counter("hits").inc(5)
    assert a.registry.snapshot() == {"hits": 1}
    assert b.registry.snapshot() == {"hits": 5}


# -- merge (cross-node / cross-run aggregation) --------------------------------

def test_merge_sums_counters_maxes_gauges_adds_histograms():
    a, b, total = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
    for reg, hits, hwm, lat in ((a, 3, 5, 20), (b, 4, 9, 200)):
        reg.counter("hits").inc(hits)
        reg.gauge("hwm").set(hwm)
        reg.histogram("lat", buckets=(100, 1000)).observe(lat)
    total.merge(a)
    total.merge(b)
    snap = total.snapshot()
    assert snap["hits"] == 7
    assert snap["hwm"] == 9
    assert snap["lat"]["count"] == 2
    assert snap["lat"]["buckets"] == {"100": 1, "1000": 1, "+inf": 0}


def test_merge_under_prefix_builds_hierarchy():
    total = MetricsRegistry()
    for i in range(3):
        node = MetricsRegistry()
        node.counter("nic.hits").inc(i + 1)
        total.merge(node, prefix=f"node{i}")
    assert total.snapshot() == {
        "node0.nic.hits": 1, "node1.nic.hits": 2, "node2.nic.hits": 3}


def test_merge_kind_conflict_raises():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("x")
    b.gauge("x").set(1)
    with pytest.raises(MetricError):
        a.merge(b)


def test_merge_incompatible_histogram_buckets_raises():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("lat", buckets=(10,))
    b.histogram("lat", buckets=(20,))
    with pytest.raises(MetricError):
        a.merge(b)


def test_merge_into_function_sourced_raises():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("x", fn=lambda: 1)
    b.counter("x").inc()
    with pytest.raises(MetricError):
        a.merge(b)
