"""Unit tests for span tracing: ring records, always-on histograms, and
the tracer drop-count invariant spans rely on."""

from repro.engine import Tracer
from repro.obs import MetricsRegistry, SpanTracer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make(enabled=True, capacity=4096):
    clock = FakeClock()
    tracer = Tracer(capacity=capacity, enabled=enabled)
    registry = MetricsRegistry()
    spans = SpanTracer(tracer, clock, metrics=registry.scope("spans"))
    return clock, tracer, registry, spans


def test_span_duration_and_ring_records():
    clock, tracer, _reg, spans = make(enabled=True)
    h = spans.begin("bus0", "dma", 4096)
    clock.now = 250.0
    assert spans.end(h) == 250.0
    enter, exit_ = tracer.records()
    assert (enter.source, enter.kind, enter.detail) == ("bus0", "dma:enter", 4096)
    assert exit_.kind == "dma:exit"
    assert exit_.detail["duration_ns"] == 250.0


def test_histogram_fed_even_with_ring_disabled():
    clock, tracer, registry, spans = make(enabled=False)
    h = spans.begin("n0", "rx_wait")
    clock.now = 300.0
    spans.end(h)
    assert len(tracer) == 0                      # nothing hit the ring
    snap = registry.snapshot()
    assert snap["spans.rx_wait_ns"]["count"] == 1
    assert snap["spans.rx_wait_ns"]["sum"] == 300.0
    assert spans.spans_closed == 1
    assert spans.ring_enabled is False


def test_spans_nest_independently():
    clock, _t, registry, spans = make(enabled=False)
    outer = spans.begin("x", "outer")
    clock.now = 10.0
    inner = spans.begin("x", "inner")
    clock.now = 15.0
    assert spans.end(inner) == 5.0
    clock.now = 100.0
    assert spans.end(outer) == 100.0
    snap = registry.snapshot()
    assert snap["spans.outer_ns"]["count"] == 1
    assert snap["spans.inner_ns"]["count"] == 1


def test_context_manager_closes_on_exception():
    clock, _t, _reg, spans = make(enabled=False)
    try:
        with spans.span("x", "risky"):
            clock.now = 7.0
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert spans.spans_closed == 1


def test_no_metrics_scope_means_no_histograms():
    clock = FakeClock()
    spans = SpanTracer(Tracer(enabled=False), clock)
    h = spans.begin("x", "k")
    clock.now = 5.0
    assert spans.end(h) == 5.0   # no metrics attached: still returns duration


def test_ring_overflow_keeps_drop_invariant():
    clock, tracer, _reg, spans = make(enabled=True, capacity=4)
    for i in range(6):
        h = spans.begin("s", "k")
        clock.now += 10.0
        spans.end(h)
    # 12 emits into a 4-slot ring: invariant emitted == len + dropped
    assert len(tracer) == 4
    assert tracer.dropped == 8
    assert tracer.capacity == 4
