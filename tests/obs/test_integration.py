"""End-to-end observability: real application runs must export the
metrics the docs promise, and ablations must show up in them."""

import pytest

from repro.apps import JacobiConfig, run_jacobi
from repro.obs import aggregate_nodes
from repro.params import SimParams

CFG = JacobiConfig(n=64, iterations=5)


def _metrics(interface="cni", nprocs=2, **overrides):
    params = SimParams().replace(num_processors=nprocs, **overrides)
    stats, _grid = run_jacobi(params, interface, CFG)
    return stats.metrics


@pytest.fixture(scope="module")
def cni_snapshot():
    return _metrics("cni")


def test_every_node_exports_the_core_counters(cni_snapshot):
    for nid in range(2):
        for rel in ("nic.mcache.hits", "nic.mcache.misses",
                    "nic.adc.poll_receives", "nic.pathfinder.matches",
                    "nic.aih.dispatches", "bus.snooped_writeback_words",
                    "nic.tx.packets_sent", "nic.rx.packets_received"):
            assert f"node{nid}.{rel}" in cni_snapshot


def test_engine_and_span_metrics_present(cni_snapshot):
    assert cni_snapshot["engine.events_processed"] > 0
    assert cni_snapshot["engine.event_queue_hwm"] >= 1
    assert cni_snapshot["engine.sim_time_ns"] > 0
    assert cni_snapshot["spans.run_ns"]["count"] == 1
    assert cni_snapshot["spans.dma_ns"]["count"] > 0


def test_cluster_bag_mirrored(cni_snapshot):
    assert cni_snapshot["cluster.mc_transmit_lookups"] > 0
    assert cni_snapshot["cluster.dsm_barriers"] > 0


def test_transmit_caching_produces_mcache_hits(cni_snapshot):
    totals = aggregate_nodes(cni_snapshot)
    assert totals["nic.mcache.hits"] > 0
    assert totals["nic.aih.dispatches"] > 0
    assert totals["bus.snooped_writeback_words"] > 0


def test_transmit_caching_ablation_zeroes_mcache_hits():
    totals = aggregate_nodes(_metrics("cni", transmit_caching=False))
    assert totals["nic.mcache.hits"] == 0


def _messaging_totals(interface):
    """Two nodes ping messages through MessagingService (the DSM apps
    never exercise the application receive path)."""
    from repro.runtime import Cluster, MessagingService

    cluster = Cluster(SimParams().replace(num_processors=2,
                                          dsm_address_space_pages=16),
                      interface=interface)

    def kernel(ctx):
        svc = MessagingService(ctx, buffer_bytes=4096)
        if ctx.rank == 0:
            yield from svc.touch_send_buffer(256)
            for _ in range(3):
                yield from svc.send(1, 256)
        else:
            for _ in range(3):
                yield from svc.recv()

    cluster.run(kernel)
    return aggregate_nodes(cluster.metrics.snapshot())


def test_standard_interface_interrupts_instead_of_polls():
    std = _messaging_totals("standard")
    assert std["nic.rx.host_interrupts"] > 0
    assert std["nic.adc.interrupt_receives"] > 0
    assert std["nic.adc.poll_receives"] == 0
    assert std.get("nic.mcache.hits", 0) == 0       # no Message Cache
    # cni for contrast: deliveries are polled, not interrupt-driven
    cni = _messaging_totals("cni")
    assert cni["nic.adc.poll_receives"] > 0
    assert cni["nic.adc.interrupt_receives"] == 0


def test_enabled_ring_captures_span_records():
    from repro.runtime import Cluster

    cluster = Cluster(SimParams().replace(num_processors=2), interface="cni")
    cluster.tracer.enabled = True

    def kernel(ctx):
        yield from ctx.barrier()

    cluster.run(kernel)
    kinds = {r.kind for r in cluster.tracer.records()}
    assert "run:enter" in kinds and "run:exit" in kinds
    emitted = len(cluster.tracer) + cluster.tracer.dropped
    assert emitted >= 2


def test_node_count_scales_metric_namespace():
    snap = _metrics("cni", nprocs=4)
    for nid in range(4):
        assert f"node{nid}.nic.tx.packets_sent" in snap
    assert "node4.nic.tx.packets_sent" not in snap
