"""Public-API hygiene: __all__ entries resolve, key surfaces exist."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.engine",
    "repro.memory",
    "repro.network",
    "repro.core",
    "repro.dsm",
    "repro.runtime",
    "repro.apps",
    "repro.harness",
    "repro.faults",
    "repro.collectives",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_entries_resolve(name):
    mod = importlib.import_module(name)
    assert hasattr(mod, "__all__"), f"{name} has no __all__"
    for entry in mod.__all__:
        assert hasattr(mod, entry), f"{name}.{entry} missing"


def test_top_level_all_is_the_source_of_truth():
    """``repro.__all__`` is the stable surface documented in docs/api.md.

    Every name promised there must exist, and the promises themselves
    are pinned: removing or renaming one is an API break and must be a
    deliberate edit to this list (and to docs/api.md), not a side effect.
    """
    import repro

    assert sorted(repro.__all__) == sorted(set(repro.__all__))
    expected = {
        "Category",
        "CholeskyConfig",
        "Cluster",
        "CollectiveError",
        "Context",
        "Counters",
        "DeliveryFailed",
        "FaultPlan",
        "HaloConfig",
        "JacobiConfig",
        "MessagingService",
        "PAPER_PARAMS",
        "PingPongConfig",
        "RunStats",
        "SimParams",
        "TimeAccount",
        "Topology",
        "TopologyError",
        "TransposeConfig",
        "WaterConfig",
        "cni_params",
        "run",
        "standard_interface_params",
        "__version__",
    }
    assert set(repro.__all__) == expected


def test_workload_registry_round_trip():
    """The by-name entry point agrees with the direct run_* functions."""
    from repro.apps import WORKLOADS, run, run_jacobi, workload

    assert set(WORKLOADS) == {"jacobi", "water", "cholesky", "collbench",
                              "pingpong", "halo", "transpose"}
    assert workload("jacobi").runner is run_jacobi
    with pytest.raises(ValueError, match="unknown app"):
        workload("fortran-weather-model")
    with pytest.raises(TypeError, match="expects JacobiConfig"):
        import repro

        run("jacobi", repro.SimParams(), "cni", config=object())


@pytest.mark.parametrize("name", PACKAGES)
def test_module_docstrings(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 20


def test_top_level_convenience_surface():
    import repro

    params = repro.SimParams().replace(num_processors=2)
    cluster = repro.Cluster(params, interface="cni")
    assert len(cluster.nodes) == 2
    assert repro.__version__


def test_paper_params_are_default():
    from repro import PAPER_PARAMS, SimParams

    assert PAPER_PARAMS == SimParams()


def test_apps_expose_run_helpers():
    from repro.apps import run_cholesky, run_jacobi, run_water  # noqa: F401


def test_harness_exposes_every_experiment():
    from repro.harness import EXPERIMENTS

    # 13 figures + 5 tables + faults + collectives + messaging + failures
    assert len(EXPERIMENTS) == 22
