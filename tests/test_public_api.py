"""Public-API hygiene: __all__ entries resolve, key surfaces exist."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.engine",
    "repro.memory",
    "repro.network",
    "repro.core",
    "repro.dsm",
    "repro.runtime",
    "repro.apps",
    "repro.harness",
    "repro.faults",
    "repro.collectives",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_entries_resolve(name):
    mod = importlib.import_module(name)
    assert hasattr(mod, "__all__"), f"{name} has no __all__"
    for entry in mod.__all__:
        assert hasattr(mod, entry), f"{name}.{entry} missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_module_docstrings(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 20


def test_top_level_convenience_surface():
    import repro

    params = repro.SimParams().replace(num_processors=2)
    cluster = repro.Cluster(params, interface="cni")
    assert len(cluster.nodes) == 2
    assert repro.__version__


def test_paper_params_are_default():
    from repro import PAPER_PARAMS, SimParams

    assert PAPER_PARAMS == SimParams()


def test_apps_expose_run_helpers():
    from repro.apps import run_cholesky, run_jacobi, run_water  # noqa: F401


def test_harness_exposes_every_experiment():
    from repro.harness import EXPERIMENTS

    assert len(EXPERIMENTS) == 20  # 13 figures + 5 tables + faults + collectives
