"""Chaos suite: full workloads under seeded faults (``-m chaos``).

Every test here runs a real application kernel on a lossy fabric and
asserts the reliable transport preserved the workload's semantics:
identical numerics to a clean run, exactly-once delivery, and visible
recovery activity in the exported metrics.
"""

import numpy as np
import pytest

from repro.apps import JacobiConfig, run_jacobi
from repro.core import DeliveryFailed
from repro.faults import CellLoss, FaultPlan
from repro.obs import aggregate_nodes
from repro.params import SimParams
from repro.runtime import Cluster, MessagingService

pytestmark = pytest.mark.chaos

LOSSY = FaultPlan(seed=11, schedules=(CellLoss(rate=0.02),))


def reliable_params(**over):
    return SimParams().replace(
        num_processors=2, reliable_transport=True, **over)


@pytest.mark.parametrize("interface", ["cni", "standard"])
def test_lossy_jacobi_matches_clean_numerics(interface):
    cfg = JacobiConfig(n=48, iterations=4)
    clean_stats, clean_grid = run_jacobi(reliable_params(), interface, cfg)
    lossy_stats, lossy_grid = run_jacobi(
        reliable_params(fault_plan=LOSSY), interface, cfg)
    assert np.array_equal(clean_grid, lossy_grid)
    agg = aggregate_nodes(lossy_stats.metrics)
    assert agg["faults.cells_dropped"] > 0
    assert agg["nic.reliab.retransmits"] > 0
    clean_agg = aggregate_nodes(clean_stats.metrics)
    assert clean_agg["nic.reliab.retransmits"] == 0


@pytest.mark.parametrize("interface", ["cni", "standard"])
def test_barrier_workload_survives_loss(interface):
    rounds_done = []

    def barrier_kernel(ctx):
        svc = MessagingService(ctx)
        for round_no in range(3):
            peer = ctx.rank ^ 1
            yield from svc.touch_send_buffer(512)
            yield from svc.send(peer, 512)
            yield from svc.recv()
            yield from ctx.barrier(round_no)
        rounds_done.append(ctx.rank)

    cluster = Cluster(
        reliable_params(fault_plan=LOSSY, dsm_address_space_pages=16),
        interface=interface)
    stats = cluster.run(barrier_kernel)
    assert sorted(rounds_done) == [0, 1]
    agg = aggregate_nodes(stats.metrics)
    assert agg["faults.cells_dropped"] > 0
    for node in cluster.nodes:
        assert node.nic.reliab.outstanding() == 0


def test_same_plan_same_digest():
    cfg = JacobiConfig(n=48, iterations=4)
    first, _ = run_jacobi(reliable_params(fault_plan=LOSSY), "cni", cfg)
    second, _ = run_jacobi(reliable_params(fault_plan=LOSSY), "cni", cfg)
    assert first.digest() == second.digest()
    # a different seed perturbs the fault sequence and hence the digest
    other_plan = FaultPlan(seed=12, schedules=(CellLoss(rate=0.02),))
    third, _ = run_jacobi(reliable_params(fault_plan=other_plan), "cni", cfg)
    assert third.digest() != first.digest()


def test_cni_retransmit_hits_message_cache():
    # Kill the first transmission (everything before 100 us) so the
    # retransmit of the *unmodified* send buffer must come from the
    # board's Message Cache: no host re-DMA, mc_transmit_hits > 0.
    plan = FaultPlan(seed=5, schedules=(
        CellLoss(rate=1.0, from_ns=0, to_ns=100_000),))
    cluster = Cluster(
        reliable_params(fault_plan=plan, dsm_address_space_pages=16),
        interface="cni")

    def kernel(ctx):
        svc = MessagingService(ctx)
        if ctx.rank == 0:
            yield from svc.touch_send_buffer(2048)
            yield from svc.send(1, 2048)
        else:
            yield from svc.recv()

    stats = cluster.run(kernel)
    agg = aggregate_nodes(stats.metrics)
    assert agg["nic.reliab.retransmits"] >= 1
    assert stats.counters.get("mc_transmit_hits") >= 1


def test_loss_above_retry_budget_fails_cleanly():
    cfg = JacobiConfig(n=48, iterations=4)
    params = reliable_params(
        fault_plan=FaultPlan(seed=3, schedules=(CellLoss(rate=1.0),)),
        reliab_max_attempts=3)
    with pytest.raises(DeliveryFailed):
        run_jacobi(params, "cni", cfg)
