"""Unit + integration tests for the NIC-resident reliable transport."""

import pytest

from repro.core import DeliveryFailed, ReliableTransport
from repro.engine import Simulator
from repro.faults import CellLoss, FaultPlan
from repro.network import Packet, PacketKind
from repro.obs import aggregate_nodes
from repro.params import SimParams
from repro.runtime import Cluster, MessagingService


def packet(src=0, dst=1, chan=3, seq=None, kind=PacketKind.DATA):
    return Packet(
        kind=kind, src_node=src, dst_node=dst, channel_id=chan,
        payload_bytes=256, rel_seq=seq,
    )


class StubNic:
    """Just enough NIC for the sender-side unit tests."""

    def __init__(self):
        self.requeued = []
        self.tx_queue = self

    def put(self, item):
        self.requeued.append(item)


def make_transport(**over):
    sim = Simulator()
    params = SimParams().replace(reliable_transport=True, **over)
    nic = StubNic()
    return sim, nic, ReliableTransport(sim, params, nic)


# -- sender side --------------------------------------------------------------

def test_disabled_transport_is_passthrough():
    sim = Simulator()
    rel = ReliableTransport(sim, SimParams(), StubNic())
    p = packet()
    rel.on_transmit(p)
    assert p.rel_seq is None and rel.outstanding() == 0
    assert rel.on_receive(p) == ([p], True)


def test_transmit_assigns_per_connection_sequences():
    _, _, rel = make_transport()
    a, b = packet(dst=1), packet(dst=1)
    other = packet(dst=2)
    for p in (a, b, other):
        rel.on_transmit(p)
    assert (a.rel_seq, b.rel_seq) == (0, 1)
    assert other.rel_seq == 0  # independent connection
    assert rel.outstanding() == 3


def test_ack_cancels_timer_and_clears_pending():
    sim, _, rel = make_transport()
    p = packet()
    rel.on_transmit(p)
    rel.on_ack(rel.make_ack(p, node_id=1))
    assert rel.outstanding() == 0
    sim.run()  # no timeout may fire
    assert rel.timeouts == 0 and rel.retransmits == 0


def test_timeout_requeues_same_packet_with_backoff():
    sim, nic, rel = make_transport(
        reliab_timeout_ns=1000.0, reliab_backoff=2.0, reliab_max_attempts=3)
    p = packet()
    rel.on_transmit(p)
    sim.run(until=1500.0)
    assert nic.requeued == [p]  # the SAME object: mcache-hit on resend
    rel.on_transmit(p)  # NIC drains its queue -> transmit again
    # second timer is backed off: 2000 ns from the retransmission
    sim.run(until=3000.0)
    assert rel.retransmits == 1
    sim.run(until=4000.0)
    assert rel.retransmits == 2 and nic.requeued == [p, p]


def test_retry_budget_raises_delivery_failed():
    sim, _, rel = make_transport(
        reliab_timeout_ns=100.0, reliab_max_attempts=1)
    p = packet()
    rel.on_transmit(p)
    with pytest.raises(DeliveryFailed) as exc:
        sim.run()
    assert exc.value.packet is p
    assert exc.value.attempts == 1
    assert "node0->node1" in str(exc.value)
    assert rel.delivery_failures == 1


def test_late_ack_suppresses_queued_retransmission():
    sim, nic, rel = make_transport(reliab_timeout_ns=100.0)
    p = packet()
    rel.on_transmit(p)
    sim.run(until=150.0)           # timeout fired, packet re-queued
    rel.on_ack(rel.make_ack(p, 1))  # ack arrives before the NIC resends
    rel.on_transmit(p)             # NIC drains the queue anyway
    sim.run()
    assert rel.retransmits == 1    # no further timers were armed
    assert nic.requeued == [p]


# -- receiver side ------------------------------------------------------------

def test_in_order_delivery():
    _, _, rel = make_transport()
    a, b = packet(seq=0), packet(seq=1)
    assert rel.on_receive(a) == ([a], True)
    assert rel.on_receive(b) == ([b], True)


def test_duplicate_suppressed_but_ackable():
    _, _, rel = make_transport()
    a = packet(seq=0)
    rel.on_receive(a)
    ready, accepted = rel.on_receive(packet(seq=0))
    assert ready == [] and not accepted
    assert rel.dup_drops == 1


def test_reorder_buffered_then_drained_in_order():
    _, _, rel = make_transport()
    s2, s0, s1 = packet(seq=2), packet(seq=0), packet(seq=1)
    assert rel.on_receive(s2) == ([], True)
    assert rel.on_receive(s0) == ([s0], True)
    ready, accepted = rel.on_receive(s1)
    assert accepted and ready == [s1, s2]
    assert rel.reorder_buffered == 1
    # a copy of the buffered-then-delivered seq is now a duplicate
    assert rel.on_receive(packet(seq=2)) == ([], False)


def test_streams_are_per_connection():
    _, _, rel = make_transport()
    a = packet(src=0, chan=3, seq=0)
    b = packet(src=1, chan=3, seq=0)
    c = packet(src=0, chan=4, seq=0)
    for p in (a, b, c):
        assert rel.on_receive(p) == ([p], True)
    assert rel.dup_drops == 0


def test_make_ack_shape():
    _, _, rel = make_transport()
    ack = rel.make_ack(packet(src=0, dst=1, seq=5), node_id=1)
    assert ack.kind is PacketKind.ACK
    assert (ack.src_node, ack.dst_node) == (1, 0)
    assert ack.rel_seq == 5
    assert ack.payload_bytes == 0
    assert not ack.reliable  # acks are never themselves acked


# -- cluster integration ------------------------------------------------------

def send_recv_kernel(ctx):
    svc = MessagingService(ctx)
    if ctx.rank == 0:
        yield from svc.touch_send_buffer(1024)
        yield from svc.send(1, 1024)
        assert svc.unacked_sends() <= 1
    else:
        yield from svc.recv()


@pytest.mark.parametrize("interface", ["cni", "standard"])
def test_clean_run_acks_without_retransmits(interface):
    params = SimParams().replace(
        num_processors=2, reliable_transport=True, dsm_address_space_pages=16)
    cluster = Cluster(params, interface=interface)
    stats = cluster.run(send_recv_kernel)
    agg = aggregate_nodes(stats.metrics)
    assert agg["nic.reliab.acks_received"] >= 1
    assert agg["nic.reliab.retransmits"] == 0
    assert agg["nic.reliab.dup_drops"] == 0
    for node in cluster.nodes:
        assert node.nic.reliab.outstanding() == 0


@pytest.mark.parametrize("interface", ["cni", "standard"])
def test_windowed_total_loss_recovers_by_retransmission(interface):
    # Everything sent in the first 100 us dies; the ~500 us retransmit
    # goes through and the receive completes exactly once.
    plan = FaultPlan(seed=5, schedules=(
        CellLoss(rate=1.0, from_ns=0, to_ns=100_000),))
    params = SimParams().replace(
        num_processors=2, reliable_transport=True, fault_plan=plan,
        dsm_address_space_pages=16)
    cluster = Cluster(params, interface=interface)
    stats = cluster.run(send_recv_kernel)
    agg = aggregate_nodes(stats.metrics)
    assert agg["nic.reliab.retransmits"] >= 1
    assert agg["faults.cells_dropped"] >= 1
    for node in cluster.nodes:
        assert node.nic.reliab.outstanding() == 0


def test_lost_ack_causes_duplicate_suppression():
    # Data (0 -> 1) flows clean; the 1 -> 0 ack path is dead early on, so
    # node 0 retransmits and node 1 must suppress the duplicate.
    plan = FaultPlan(seed=9, schedules=(
        CellLoss(rate=1.0, src=1, dst=0, from_ns=0, to_ns=600_000),))
    params = SimParams().replace(
        num_processors=2, reliable_transport=True, fault_plan=plan,
        dsm_address_space_pages=16)
    cluster = Cluster(params, interface="cni")
    stats = cluster.run(send_recv_kernel)
    agg = aggregate_nodes(stats.metrics)
    assert agg["nic.reliab.retransmits"] >= 1
    assert agg["nic.reliab.dup_drops"] >= 1


def test_total_loss_raises_delivery_failed_from_cluster_run():
    plan = FaultPlan(seed=3, schedules=(CellLoss(rate=1.0),))
    params = SimParams().replace(
        num_processors=2, reliable_transport=True, fault_plan=plan,
        reliab_max_attempts=3, dsm_address_space_pages=16)
    cluster = Cluster(params, interface="cni")
    with pytest.raises(DeliveryFailed) as exc:
        cluster.run(send_recv_kernel)
    assert exc.value.attempts == 3
