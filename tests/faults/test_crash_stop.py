"""Crash-stop fault tolerance: the no-hang contract (``-m chaos``).

Every blocking layer either completes or raises a typed error
(docs/reliability.md): the rendezvous handshake survives loss at each
stage through the reliable transport; deadlines turn dead peers into
``RuntimeTimeout`` / ``PeerDead`` / ``CollectiveError``; the engine
watchdog names what was blocked when nothing else fired; and
``run_map(on_error="record")`` keeps sweeps deterministic at any
``--jobs`` while fault plans kill individual points.
"""

import pytest

from repro.apps import CollBenchConfig, JacobiConfig
from repro.collectives import CollectiveError
from repro.engine import StuckError
from repro.faults import CellLoss, FaultPlan, LinkDown, NodeCrash, NodeSlow
from repro.obs import aggregate_nodes
from repro.params import SimParams
from repro.runtime import (
    Cluster,
    MessagingService,
    PeerDead,
    RuntimeTimeout,
)

pytestmark = pytest.mark.chaos


def make_cluster(nprocs=2, **over):
    params = SimParams().replace(
        num_processors=nprocs, dsm_address_space_pages=16, **over)
    return Cluster(params, interface="cni")


# ------------------------------------------------- rendezvous under loss --
#: One LinkDown window per handshake stage, calibrated against the
#: clean 16 KB rendezvous timeline (RTS ~95 us, CTS back ~250 us, data
#: until ~445 us, delivery ~600 us).  Each window kills the traffic of
#: its stage; the reliable transport must recover every one.
RENDEZVOUS_STAGES = [
    ("rts-lost", LinkDown(src=0, dst=1, from_ns=0.0, to_ns=150_000.0)),
    ("cts-lost", LinkDown(src=1, dst=0, from_ns=0.0, to_ns=250_000.0)),
    ("data-lost", LinkDown(src=0, dst=1, from_ns=300_000.0,
                           to_ns=400_000.0)),
    ("completion-lost", LinkDown(src=1, dst=0, from_ns=300_000.0,
                                 to_ns=600_000.0)),
]


@pytest.mark.parametrize(
    "stage", RENDEZVOUS_STAGES, ids=[name for name, _s in RENDEZVOUS_STAGES])
def test_rendezvous_recovers_from_stage_loss(stage):
    _name, sched = stage
    got = {}
    cluster = make_cluster(
        reliable_transport=True,
        reliab_timeout_ns=200_000.0,
        fault_plan=FaultPlan(seed=3, schedules=(sched,)))

    def kernel(ctx):
        svc = MessagingService(ctx, buffer_bytes=32768)
        if ctx.rank == 0:
            yield from svc.touch_send_buffer(16384)
            yield from svc.send(1, 16384, payload={"tag": "big"})
        else:
            desc = yield from svc.recv()
            got["length"] = desc.length
            got["payload"] = desc.payload

    stats = cluster.run(kernel)
    assert got["length"] == 16384
    assert got["payload"] == {"tag": "big"}
    agg = aggregate_nodes(stats.metrics)
    assert agg["nic.reliab.retransmits"] > 0


# ------------------------------------------------------- deadline expiry --
def test_remote_read_deadline_expires_as_runtime_timeout():
    # Reply path permanently dead, transport off: the only bound on the
    # read is its deadline.
    cluster = make_cluster(
        op_deadline_ns=5_000_000.0,
        fault_plan=FaultPlan(seed=0, schedules=(
            LinkDown(src=1, dst=0, from_ns=0.0, to_ns=float("inf")),)))

    def kernel(ctx):
        svc = MessagingService(ctx)
        # SPMD addressing: both ranks expose at the same program point,
        # so the window address needs no exchange (docs/runtime.md).
        win = svc.expose(4096)
        if ctx.rank == 0:
            yield from svc.remote_read(1, win, 1024)

    with pytest.raises(RuntimeTimeout) as exc:
        cluster.run(kernel)
    assert not isinstance(exc.value, PeerDead)
    assert exc.value.op == "read"


def test_recv_deadline_expires_without_sender():
    cluster = make_cluster(op_deadline_ns=2_000_000.0)

    def kernel(ctx):
        svc = MessagingService(ctx)
        if ctx.rank == 0:
            yield from svc.recv()  # nobody ever sends

    with pytest.raises(RuntimeTimeout) as exc:
        cluster.run(kernel)
    assert exc.value.op == "recv"


def test_remote_read_from_crashed_peer_is_peer_dead():
    cluster = make_cluster(
        op_deadline_ns=20_000_000.0,
        heartbeat_interval_ns=500_000.0,
        heartbeat_miss_budget=4,
        fault_plan=FaultPlan(seed=0, schedules=(NodeCrash(node=1),)))

    def kernel(ctx):
        svc = MessagingService(ctx)
        win = svc.expose(4096)
        if ctx.rank == 0:
            yield from svc.remote_read(1, win, 1024)

    with pytest.raises(PeerDead) as exc:
        cluster.run(kernel)
    assert exc.value.peer == 1


def test_crashed_participant_aborts_collective_with_names():
    # Whichever waiter's deadline fires first raises; with the detector
    # on, even a non-root (which cannot know the arrival set) names the
    # suspected-dead rank in the message.
    cluster = make_cluster(
        nprocs=4,
        op_deadline_ns=10_000_000.0,
        heartbeat_interval_ns=500_000.0,
        heartbeat_miss_budget=4,
        fault_plan=FaultPlan(seed=0, schedules=(NodeCrash(node=3),)))

    def kernel(ctx):
        yield from ctx.barrier()

    with pytest.raises(CollectiveError) as exc:
        cluster.run(kernel)
    assert "timed out" in str(exc.value)
    assert "3" in str(exc.value)


def test_dsm_page_fetch_times_out_on_crashed_home():
    # Rank 0's first touch of a page homed on the crashed rank 1 must
    # end in a typed deadline error, not a hang (heartbeats keep the
    # event queue alive forever without one).
    cluster = make_cluster(
        op_deadline_ns=10_000_000.0,
        heartbeat_interval_ns=500_000.0,
        heartbeat_miss_budget=4,
        fault_plan=FaultPlan(seed=0, schedules=(NodeCrash(node=1),)))
    arr = cluster.alloc_shared((2, 512))
    base = arr.base_vaddr

    def kernel(ctx):
        if ctx.rank == 0:
            yield from ctx.read_runs([(base + 4096, 64)])  # rank 1's page

    with pytest.raises(RuntimeTimeout):  # PeerDead is a subclass
        cluster.run(kernel)


# --------------------------------------------------------- the watchdog --
def test_stuck_report_names_blocked_waits_without_deadlines():
    # No deadlines, no detector: the crash leaves rank 0 blocked and
    # the queue drains.  The watchdog must say *what* was blocked.
    cluster = make_cluster(
        fault_plan=FaultPlan(seed=0, schedules=(NodeCrash(node=1),)))

    def kernel(ctx):
        svc = MessagingService(ctx)
        win = svc.expose(4096)
        if ctx.rank == 0:
            yield from svc.remote_read(1, win, 1024)

    with pytest.raises(StuckError) as exc:
        cluster.run(kernel)
    assert "application deadlock" in str(exc.value)
    assert exc.value.report is not None
    assert any("read" in w for w in exc.value.report.waits)


# ---------------------------------------------------------- slow nodes --
def test_node_slow_inflates_transfer_time():
    def elapsed(plan):
        t = {}
        cluster = make_cluster(fault_plan=plan)

        def kernel(ctx):
            svc = MessagingService(ctx, buffer_bytes=32768)
            if ctx.rank == 0:
                yield from svc.touch_send_buffer(16384)
                yield from svc.send(1, 16384)
            else:
                yield from svc.recv()
                t["done"] = ctx.sim.now

        cluster.run(kernel)
        return t["done"]

    slow = FaultPlan(seed=0, schedules=(NodeSlow(node=1, factor=8.0),))
    assert elapsed(slow) > 1.5 * elapsed(None)


# ------------------------------------------- sweeps that keep going --
def test_run_map_records_typed_failures_deterministically():
    from repro.harness import RunFailure, RunSpec, run_map

    base = SimParams().replace(
        num_processors=4,
        reliable_transport=True,
        op_deadline_ns=20_000_000.0,
        runtime_send_retries=1,
    )
    crash = FaultPlan(seed=5, schedules=(NodeCrash(node=3, at_ns=200_000.0),))
    loss = FaultPlan(seed=5, schedules=(CellLoss(rate=0.005),))
    specs = [
        RunSpec("jacobi", base, "cni", JacobiConfig(n=32, iterations=2)),
        RunSpec("jacobi", base.replace(fault_plan=crash), "cni",
                JacobiConfig(n=32, iterations=2)),
        RunSpec("collbench", base.replace(fault_plan=loss), "cni",
                CollBenchConfig(op="allreduce", rounds=4,
                                compute_cycles=500)),
        RunSpec("collbench", base.replace(fault_plan=crash), "cni",
                CollBenchConfig(op="allreduce", rounds=4,
                                compute_cycles=500)),
    ]
    serial = run_map(specs, jobs=1, record=False, on_error="record")
    parallel = run_map(specs, jobs=2, record=False, on_error="record")

    assert [r.digest() for r in serial] == [r.digest() for r in parallel]
    failures = [r for r in serial if isinstance(r, RunFailure)]
    assert failures, "crash plans should fail at least one point"
    typed = {"RuntimeTimeout", "PeerDead", "CollectiveError",
             "DeliveryFailed"}
    assert {f.error_type for f in failures} <= typed
    # the clean point still succeeded
    assert not isinstance(serial[0], RunFailure)
