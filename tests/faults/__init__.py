"""Tests for the fault-injection framework and reliable transport."""
