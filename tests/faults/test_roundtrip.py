"""``FaultPlan.describe()`` <-> ``parse_fault_plan`` round-trip.

The describe grammar is the CLI grammar (docs/reliability.md): a plan
printed by ``describe()`` must parse back to an equal plan, for every
schedule kind, so fault plans travel losslessly through logs, bench
banners and ``--fault-plan`` arguments.
"""

import pytest

from repro.faults import (
    CellCorrupt,
    CellLoss,
    FaultPlan,
    LinkDown,
    NicStall,
    NodeCrash,
    NodeSlow,
    parse_fault_plan,
)

SCHEDULES = [
    CellLoss(rate=0.01, from_ns=5.0, to_ns=100.0),
    CellLoss(nth=3, src=0, dst=2),
    CellCorrupt(rate=0.5),
    LinkDown(src=1, dst=0, from_ns=10.0, to_ns=20.0),
    NicStall(node=2, from_ns=0.0, to_ns=50.0),
    NodeCrash(node=1, at_ns=42.0),
    NodeSlow(node=3, factor=4.0, from_ns=1.0, to_ns=9.0),
]


@pytest.mark.parametrize("sched", SCHEDULES, ids=lambda s: type(s).__name__)
def test_single_schedule_round_trips(sched):
    plan = FaultPlan(seed=11, schedules=(sched,))
    again = parse_fault_plan(plan.describe())
    assert again == plan
    assert again.describe() == plan.describe()


def test_full_plan_round_trips():
    plan = FaultPlan(seed=7, schedules=tuple(SCHEDULES))
    again = parse_fault_plan(plan.describe())
    assert again == plan
    assert again.describe() == plan.describe()


def test_round_trip_preserves_unbounded_window():
    plan = FaultPlan(seed=0, schedules=(NodeSlow(node=0, factor=2.0),))
    assert parse_fault_plan(plan.describe()) == plan
