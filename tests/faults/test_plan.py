"""Unit tests for FaultPlan schedules, activation and the CLI grammar."""

import pytest

from repro.engine import Simulator
from repro.faults import (
    ActiveFaultPlan,
    CellCorrupt,
    CellLoss,
    FaultPlan,
    LinkDown,
    NicStall,
    parse_fault_plan,
)
from repro.network import CellTrain, Network, Packet, PacketKind, Segmenter
from repro.params import SimParams


def packet(src=0, dst=1, size=4096):
    return Packet(
        kind=PacketKind.DATA, src_node=src, dst_node=dst, channel_id=1,
        payload_bytes=size,
    )


def train(src=0, dst=1, n_cells=10):
    return CellTrain(packet(src, dst), n_cells)


# -- schedule validation ------------------------------------------------------

def test_cell_loss_validates():
    CellLoss(rate=0.5)
    CellLoss(nth=3)
    with pytest.raises(ValueError):
        CellLoss(rate=1.5)
    with pytest.raises(ValueError):
        CellLoss(rate=-0.1)
    with pytest.raises(ValueError):
        CellLoss(nth=0)
    with pytest.raises(ValueError):
        CellLoss()  # needs rate or nth
    with pytest.raises(ValueError):
        CellLoss(rate=0.1, from_ns=100, to_ns=100)  # empty window
    with pytest.raises(ValueError):
        CellLoss(rate=0.1, src=-1)


def test_link_down_and_stall_validate():
    LinkDown(src=0, dst=1, from_ns=0, to_ns=1e6)
    with pytest.raises(ValueError):
        LinkDown(src=0, dst=1, from_ns=5, to_ns=5)
    NicStall(node=2, from_ns=0, to_ns=100)
    with pytest.raises(ValueError):
        NicStall(node=-1, from_ns=0, to_ns=100)


def test_plan_is_frozen_and_hashable():
    plan = FaultPlan(seed=7, schedules=(CellLoss(rate=0.1),))
    assert hash(plan) == hash(FaultPlan(seed=7, schedules=(CellLoss(rate=0.1),)))
    with pytest.raises(Exception):
        plan.seed = 8
    # rides inside the frozen SimParams
    params = SimParams().replace(fault_plan=plan)
    assert params.fault_plan is plan
    # describe() emits the --fault-plan grammar (round-trips
    # through parse_fault_plan; see tests/faults/test_roundtrip.py)
    assert "cell_loss" in plan.describe()
    assert plan.describe().startswith("seed=7;")


def test_plan_rejects_non_schedules():
    with pytest.raises(ValueError):
        FaultPlan(schedules=("drop everything",))


# -- activation semantics -----------------------------------------------------

def test_seeded_activations_are_identical():
    plan = FaultPlan(seed=5, schedules=(CellLoss(rate=0.3),))
    a, b = plan.activate(4), plan.activate(4)
    fates_a = [a.train_faults(train(), now=0.0) for _ in range(20)]
    fates_b = [b.train_faults(train(), now=0.0) for _ in range(20)]
    assert fates_a == fates_b
    assert sum(l for l, _ in fates_a) > 0
    assert a.cells_dropped == b.cells_dropped


def test_nth_counts_across_trains():
    plan = FaultPlan(schedules=(CellLoss(nth=3),))
    active = plan.activate(2)
    # 10-cell trains: positions 0..9 then 10..19; multiples of 3 below 20
    # are 3,6,9,12,15,18 -> 3 hits in each train.
    assert active.train_faults(train(n_cells=10), now=0.0) == (3, 0)
    assert active.train_faults(train(n_cells=10), now=0.0) == (3, 0)
    assert active.cells_dropped[1] == 6


def test_window_gates_schedule():
    plan = FaultPlan(schedules=(CellLoss(rate=1.0, from_ns=100, to_ns=200),))
    active = plan.activate(2)
    assert active.train_faults(train(n_cells=5), now=50.0) == (0, 0)
    assert active.train_faults(train(n_cells=5), now=150.0) == (5, 0)
    assert active.train_faults(train(n_cells=5), now=200.0) == (0, 0)


def test_flow_selector_restricts_direction():
    plan = FaultPlan(schedules=(CellLoss(rate=1.0, src=0, dst=1),))
    active = plan.activate(4)
    assert active.train_faults(train(0, 1, 4), now=0.0) == (4, 0)
    assert active.train_faults(train(1, 0, 4), now=0.0) == (0, 0)
    assert active.train_faults(train(2, 1, 4), now=0.0) == (0, 0)


def test_link_down_kills_matching_flow_only():
    plan = FaultPlan(schedules=(LinkDown(src=0, dst=1, from_ns=0, to_ns=1e3),))
    active = plan.activate(4)
    assert active.train_faults(train(0, 1, 8), now=500.0) == (8, 0)
    assert active.train_faults(train(1, 0, 8), now=500.0) == (0, 0)
    assert active.train_faults(train(0, 1, 8), now=2e3) == (0, 0)


def test_corrupt_counts_separately_from_loss():
    plan = FaultPlan(schedules=(CellCorrupt(nth=2),))
    active = plan.activate(2)
    lost, corrupted = active.train_faults(train(n_cells=10), now=0.0)
    assert lost == 0 and corrupted == 5
    assert active.cells_corrupted[1] == 5
    assert active.cells_dropped[1] == 0


def test_nic_stall_window():
    plan = FaultPlan(schedules=(NicStall(node=1, from_ns=100, to_ns=400),))
    active = plan.activate(2)
    assert active.stall_ns(1, now=50.0) == 0.0
    assert active.stall_ns(1, now=100.0) == pytest.approx(300.0)
    assert active.stall_ns(1, now=399.0) == pytest.approx(1.0)
    assert active.stall_ns(0, now=200.0) == 0.0


def test_cell_fate_drop_and_corrupt():
    plan = FaultPlan(schedules=(CellLoss(nth=2), CellCorrupt(nth=3)))
    active = plan.activate(2)
    seg = Segmenter(SimParams())
    p = packet()
    fates = [active.cell_fate(c, p, now=0.0) for c in seg.segment(p)[:12]]
    assert "drop" in fates and "corrupt" in fates
    # a cell hit by both schedules is dropped, not corrupted
    assert fates.count("drop") == 6


# -- legacy injector shims ----------------------------------------------------

def test_legacy_loss_injector_deprecated_but_works():
    sim = Simulator()
    params = SimParams().replace(num_processors=4)
    net = Network(sim, params)
    seg = Segmenter(params)
    with pytest.deprecated_call():
        net.loss_injector = lambda train: 1
    net.send_train(seg.make_train(packet(0, 1)))
    sim.run()
    ok, delivered = net.rx_queues[1].try_get()
    assert ok and delivered.lost_cells == 1
    assert net.fault_cells_dropped(1) == 1


def test_legacy_cell_injector_deprecated():
    sim = Simulator()
    net = Network(sim, SimParams().replace(num_processors=4))
    with pytest.deprecated_call():
        net.cell_loss_injector = lambda cell, pkt: False
    assert net.cell_loss_injector is not None


def test_plan_level_train_shim_warns_and_delegates():
    """The ActiveFaultPlan setter itself warns, and the attached callable
    is evaluated by the plan (damage lands in the plan's counters)."""
    active = FaultPlan().activate(num_nodes=4)
    with pytest.warns(DeprecationWarning,
                      match="set_legacy_train_injector is deprecated"):
        active.set_legacy_train_injector(lambda train: 2)
    lost, corrupted = active.train_faults(train(0, 3, n_cells=10), now=0.0)
    assert (lost, corrupted) == (2, 0)
    assert active.cells_dropped[3] == 2


def test_plan_level_cell_shim_warns_and_delegates():
    active = FaultPlan().activate(num_nodes=4)
    with pytest.warns(DeprecationWarning,
                      match="set_legacy_cell_injector is deprecated"):
        active.set_legacy_cell_injector(lambda cell, pkt: True)
    seg = Segmenter(SimParams().replace(num_processors=4))
    cell = seg.segment(packet(0, 2, size=40))[0]
    assert active.cell_fate(cell, packet(0, 2, size=40), now=0.0) == "drop"
    assert active.cells_dropped[2] == 1


# -- CLI grammar --------------------------------------------------------------

def test_parse_round_trip():
    plan = parse_fault_plan(
        "seed=42;cell_loss(rate=0.01);link_down(src=0,dst=1,from_ns=0,to_ns=1e6)"
    )
    assert plan.seed == 42
    assert plan.schedules == (
        CellLoss(rate=0.01),
        LinkDown(src=0, dst=1, from_ns=0, to_ns=1e6),
    )


def test_parse_all_schedule_types():
    plan = parse_fault_plan(
        "cell_loss(nth=100,src=0,dst=1);cell_corrupt(rate=0.5);"
        "nic_stall(node=2,from_ns=0,to_ns=5e5)"
    )
    kinds = [type(s) for s in plan.schedules]
    assert kinds == [CellLoss, CellCorrupt, NicStall]
    assert plan.schedules[0].nth == 100
    assert plan.seed == 0


@pytest.mark.parametrize("spec", [
    "bogus(rate=0.1)",            # unknown schedule
    "cell_loss(rate=2.0)",        # invalid rate
    "cell_loss()",                # needs rate or nth
    "cell_loss(rate=0.1",         # unbalanced parens
    "cell_loss(rate=abc)",        # not a number
    "cell_loss(rate)",            # not key=value
    "cell_loss(nth=1.5)",         # integer key
    "rate=0.1",                   # bare clause must be seed=
    "cell_loss(wat=1)",           # unknown keyword
])
def test_parse_rejects_bad_specs(spec):
    with pytest.raises(ValueError):
        parse_fault_plan(spec)


def test_parse_empty_spec_is_empty_plan():
    plan = parse_fault_plan("")
    assert plan == FaultPlan()
