"""The persistent run store: hit/miss accounting, LRU eviction under a
byte cap, persistence across reopen, atomicity of the on-disk layout
and index schema versioning."""

import json
import os

import pytest

from repro.engine import RunStats
from repro.engine.stats import Category, TimeAccount
from repro.harness import RunFailure
from repro.service import RunStore, service_metrics
from repro.service.store import INDEX_SCHEMA_VERSION


def make_stats(tag, pad=0):
    """A small synthetic RunStats distinguishable by ``tag`` (``pad``
    inflates the record's on-disk size for capacity tests)."""
    stats = RunStats(elapsed_ns=float(len(tag)))
    stats.counters.inc(f"tag_{tag}")
    if pad:
        stats.metrics["pad"] = "x" * pad
    account = TimeAccount()
    account.add(Category.COMPUTATION, 1.0)
    stats.per_processor.append(account)
    return stats


def metric(name):
    return service_metrics()[name]


def test_miss_then_hit(tmp_path):
    store = RunStore(str(tmp_path))
    misses0, hits0 = metric("service.store.misses"), \
        metric("service.store.hits")
    assert store.get("d" * 64) is None
    assert metric("service.store.misses") == misses0 + 1

    stats = make_stats("a")
    store.put("d" * 64, stats)
    back = store.get("d" * 64)
    assert back.digest() == stats.digest()
    assert metric("service.store.hits") == hits0 + 1
    assert "d" * 64 in store and len(store) == 1


def test_failure_records_are_first_class(tmp_path):
    store = RunStore(str(tmp_path))
    failure = RunFailure("spec", "RuntimeTimeout", "node 1 dead")
    store.put("f" * 64, failure)
    back = store.get("f" * 64)
    assert isinstance(back, RunFailure)
    assert back == failure


def test_put_rejects_non_results(tmp_path):
    with pytest.raises(ValueError, match="dict"):
        RunStore(str(tmp_path)).put("a" * 64, {"not": "a result"})


def test_lru_eviction_respects_recency_and_spares_newest(tmp_path):
    one = make_stats("one", pad=400)
    nbytes = len(one.to_json().encode())
    store = RunStore(str(tmp_path), capacity_bytes=2 * nbytes + 10)
    store.put("a" * 64, one)
    store.put("b" * 64, make_stats("two", pad=400))
    # refresh "a": now "b" is the least-recently-used record
    assert store.get("a" * 64) is not None
    evictions0 = metric("service.store.evictions")
    store.put("c" * 64, make_stats("three", pad=400))
    assert store.digests() == ("a" * 64, "c" * 64)
    assert metric("service.store.evictions") == evictions0 + 1
    assert store.get("b" * 64) is None  # evicted -> miss
    assert store.total_bytes <= store.capacity_bytes


def test_oversized_record_alone_is_never_evicted(tmp_path):
    store = RunStore(str(tmp_path), capacity_bytes=1)
    store.put("a" * 64, make_stats("big", pad=1000))
    assert len(store) == 1  # newest record survives any cap
    store.put("b" * 64, make_stats("big2", pad=1000))
    assert store.digests() == ("b" * 64,)


def test_persistence_across_reopen(tmp_path):
    stats = make_stats("persist")
    RunStore(str(tmp_path)).put("a" * 64, stats)
    reopened = RunStore(str(tmp_path))
    assert len(reopened) == 1
    assert reopened.get("a" * 64).digest() == stats.digest()


def test_unknown_index_schema_version_rejected(tmp_path):
    store = RunStore(str(tmp_path))
    store.put("a" * 64, make_stats("x"))
    index_path = os.path.join(str(tmp_path), "index.json")
    with open(index_path) as fh:
        doc = json.load(fh)
    assert doc["schema_version"] == INDEX_SCHEMA_VERSION
    doc["schema_version"] = 99
    with open(index_path, "w") as fh:
        json.dump(doc, fh)
    with pytest.raises(ValueError, match="schema_version 99"):
        RunStore(str(tmp_path))


def test_lost_object_degrades_to_miss(tmp_path):
    store = RunStore(str(tmp_path))
    store.put("a" * 64, make_stats("x"))
    os.remove(os.path.join(str(tmp_path), "objects", "aa",
                           "a" * 64 + ".json"))
    assert store.get("a" * 64) is None
    assert "a" * 64 not in store  # index entry dropped too


def test_stats_document(tmp_path):
    store = RunStore(str(tmp_path), capacity_bytes=1 << 20)
    store.put("a" * 64, make_stats("x"))
    doc = store.stats()
    assert doc["entries"] == 1
    assert doc["bytes"] == store.total_bytes > 0
    assert doc["capacity_bytes"] == 1 << 20


def test_capacity_must_be_positive(tmp_path):
    with pytest.raises(ValueError, match="capacity_bytes"):
        RunStore(str(tmp_path), capacity_bytes=0)
