"""The run farm: the cache-hit acceptance guarantee, priority order,
same-spec coalescing, jobs-count-independent digests, failure records,
cancellation and lifecycle."""

import threading

import pytest

from repro.apps import JacobiConfig
from repro.faults import FaultPlan, NodeCrash
from repro.harness import RunFailure, RunSpec, run_map, shutdown_pool
from repro.params import SimParams
from repro.service import JobState, RunFarm, RunStore, service_metrics


def tiny_spec(nprocs=2, iface="cni", n=16):
    return RunSpec("jacobi", SimParams().replace(num_processors=nprocs),
                   iface, workload=JacobiConfig(n=n, iterations=2))


def crash_spec():
    """A spec that deterministically dies with a typed error (the PR 7
    crash-stop path): node 1 crashes, the deadline fires."""
    params = SimParams().replace(
        num_processors=2, reliable_transport=True,
        op_deadline_ns=20_000_000.0, runtime_send_retries=1,
        fault_plan=FaultPlan(seed=5, schedules=(
            NodeCrash(node=1, at_ns=200_000.0),)))
    return RunSpec("jacobi", params, "cni",
                   workload=JacobiConfig(n=16, iterations=1))


def metric(name):
    return service_metrics()[name]


@pytest.fixture
def farm(tmp_path):
    with RunFarm(store=str(tmp_path), workers=1,
                 autostart=False) as farm:
        yield farm


# -- the acceptance guarantee --------------------------------------------------

def test_identical_spec_twice_executes_once_with_identical_digest(farm):
    """ISSUE 9's gate: resubmitting an identical RunSpec executes the
    simulation once; the second job is served from the store with a
    bit-identical RunStats digest and service.store.hits increments."""
    spec = tiny_spec()
    hits0, puts0 = metric("service.store.hits"), \
        metric("service.store.puts")
    first = farm.submit(spec)
    farm.step()
    second = farm.submit(tiny_spec())  # equal by value, not identity
    farm.step()
    r1, r2 = farm.result(first), farm.result(second)
    assert r1.digest() == r2.digest()
    assert farm.status(first)["from_cache"] is False
    assert farm.status(second)["from_cache"] is True
    assert metric("service.store.hits") == hits0 + 1
    assert metric("service.store.puts") == puts0 + 1  # one execution


def test_cached_digest_matches_plain_run_map(farm):
    """The store can never launder a different result: a farm-served
    RunStats is bit-identical to run_map([spec]) (seed pinning)."""
    spec = tiny_spec()
    job = farm.submit(spec)
    farm.step()
    assert farm.result(job).digest() == \
        run_map([spec], jobs=1, record=False)[0].digest()


def test_cached_digest_independent_of_workers(tmp_path, monkeypatch):
    """A workers=2 farm (forced process pool) stores the same digest a
    workers=1 farm computes — --jobs is performance, never identity."""
    monkeypatch.setenv("REPRO_POOL_FORCE", "1")
    specs = [tiny_spec(nprocs=1), tiny_spec(nprocs=2)]
    digests = {}
    try:
        for workers in (1, 2):
            with RunFarm(store=str(tmp_path / str(workers)),
                         workers=workers, autostart=False) as farm:
                ids = farm.submit_batch(specs)
                farm.step()
                digests[workers] = [farm.result(i).digest()
                                    for i in ids]
    finally:
        shutdown_pool()
    assert digests[1] == digests[2]


# -- queue semantics -----------------------------------------------------------

def test_priority_order_fifo_within_priority(farm):
    low = farm.submit(tiny_spec(nprocs=1), priority=0)
    high1 = farm.submit(tiny_spec(nprocs=2), priority=5)
    high2 = farm.submit(tiny_spec(nprocs=4), priority=5)
    assert farm.step() == [high1, high2, low]


def test_same_batch_coalesces_to_one_execution(farm):
    coalesced0, puts0 = metric("service.jobs.coalesced"), \
        metric("service.store.puts")
    ids = farm.submit_batch([tiny_spec(), tiny_spec(), tiny_spec()])
    farm.step()
    assert metric("service.store.puts") == puts0 + 1
    assert metric("service.jobs.coalesced") == coalesced0 + 2
    digests = {farm.result(i).digest() for i in ids}
    assert len(digests) == 1
    flags = [farm.status(i)["coalesced"] for i in ids]
    assert flags == [False, True, True]


def test_concurrent_same_spec_submissions_execute_once(tmp_path):
    """Threaded clients racing the dispatcher on one spec still cost
    one simulation: any job not coalesced into the first batch is a
    store hit."""
    puts0 = metric("service.store.puts")
    with RunFarm(store=str(tmp_path), workers=1) as farm:
        ids = []
        lock = threading.Lock()

        def client():
            job = farm.submit(tiny_spec())
            with lock:
                ids.append(job)

        threads = [threading.Thread(target=client) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        results = [farm.result(i, timeout=60) for i in ids]
    assert len({r.digest() for r in results}) == 1
    assert metric("service.store.puts") == puts0 + 1


def test_cancel_queued_job(farm):
    cancelled0 = metric("service.jobs.cancelled")
    job = farm.submit(tiny_spec())
    assert farm.cancel(job) is True
    assert farm.status(job)["state"] == JobState.CANCELLED
    assert metric("service.jobs.cancelled") == cancelled0 + 1
    assert farm.step() == []  # lazily discarded, never executed
    with pytest.raises(RuntimeError, match="cancelled"):
        farm.result(job)
    assert farm.cancel(job) is False  # not cancellable twice


def test_sweep_enqueues_one_job_per_value(farm):
    ids = farm.submit_sweep("jacobi", [1, 2],
                            workload=JacobiConfig(n=16, iterations=1))
    farm.step()
    assert [len(farm.result(i).per_processor) for i in ids] == [1, 2]


# -- failure semantics ---------------------------------------------------------

def test_typed_failure_is_stored_and_served_from_cache(farm):
    failed0 = metric("service.jobs.failed")
    first = farm.submit(crash_spec())
    farm.step()
    r1 = farm.result(first)
    assert isinstance(r1, RunFailure)
    assert farm.status(first)["state"] == JobState.FAILED
    assert metric("service.jobs.failed") == failed0 + 1

    second = farm.submit(crash_spec())
    farm.step()
    r2 = farm.result(second)
    assert farm.status(second)["from_cache"] is True
    assert r2.digest() == r1.digest()


def test_untyped_executor_error_fails_jobs_but_not_the_farm(
        farm, monkeypatch):
    def boom(*args, **kwargs):
        raise OSError("pool exploded")

    monkeypatch.setattr("repro.service.farm.run_map", boom)
    job = farm.submit(tiny_spec())
    farm.step()
    assert farm.status(job)["state"] == JobState.FAILED
    assert "pool exploded" in farm.status(job)["error"]
    with pytest.raises(RuntimeError, match="pool exploded"):
        farm.result(job)
    assert farm.status(job)["digest"] not in farm.store  # bugs aren't cached

    monkeypatch.undo()
    retry = farm.submit(tiny_spec())  # the farm still serves
    farm.step()
    assert farm.status(retry)["state"] == JobState.DONE


# -- lifecycle and edges -------------------------------------------------------

def test_result_timeout_and_unknown_ids(farm):
    job = farm.submit(tiny_spec())
    with pytest.raises(TimeoutError):
        farm.result(job, timeout=0.01)
    with pytest.raises(KeyError):
        farm.status("job-999999")
    with pytest.raises(KeyError):
        farm.result("job-999999")


def test_submit_validates(farm):
    with pytest.raises(ValueError, match="RunSpec"):
        farm.submit("jacobi")
    with pytest.raises(ValueError, match="at least one value"):
        farm.submit_sweep("jacobi", [])


def test_closed_farm_rejects_submissions(tmp_path):
    farm = RunFarm(store=str(tmp_path), autostart=False)
    farm.close()
    with pytest.raises(RuntimeError, match="closed"):
        farm.submit(tiny_spec())


def test_autostart_dispatcher_drains_without_step(tmp_path):
    with RunFarm(store=str(tmp_path), workers=1) as farm:
        job = farm.submit(tiny_spec())
        stats = farm.result(job, timeout=60)
        assert stats.elapsed_ns > 0
        farm.drain(timeout=60)


def test_handed_over_store_rejects_duplicate_capacity(tmp_path):
    store = RunStore(str(tmp_path), capacity_bytes=1 << 20)
    with pytest.raises(ValueError, match="capacity_bytes"):
        RunFarm(store=store, capacity_bytes=1 << 10)
    with RunFarm(store=store, autostart=False) as farm:
        assert farm.store is store


def test_stats_shape(farm):
    job = farm.submit(tiny_spec())
    farm.step()
    doc = farm.stats()
    assert doc["workers"] == 1
    assert doc["queue_depth"] == 0
    assert doc["jobs"][JobState.DONE] >= 1
    assert doc["store"]["entries"] >= 1
    assert "service.store.hits" in doc["metrics"]
    assert farm.result(job)  # still resolvable after stats()
