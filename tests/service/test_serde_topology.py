"""Topology through the run-document serde layer.

Two compatibility promises:

* a spec on the default single-switch fabric (``topology=None``)
  serializes **byte-identically** to a pre-topology document — same
  schema version 1, no ``topology`` key, same content-addressed digest;
* a spec with an explicit fabric declares schema version 2, round-trips
  exactly, and unknown topology grammar is rejected on decode, never
  guessed at.
"""

import json

import pytest

from repro.apps import JacobiConfig
from repro.harness import RunFailure, RunSpec
from repro.harness.parallel import RUN_DOC_SCHEMA_VERSION
from repro.harness.serde import decode_params, encode_params
from repro.params import SimParams


def spec_for(topology=None):
    params = SimParams().replace(num_processors=4, topology=topology)
    return RunSpec("jacobi", params, "cni",
                   workload=JacobiConfig(n=16, iterations=2))


# -- legacy byte-compatibility -------------------------------------------------

def test_default_fabric_doc_has_no_topology_key():
    doc = spec_for().to_doc()
    assert "topology" not in doc["params"]
    assert doc["schema_version"] == 1


def test_default_fabric_digest_matches_pre_topology_layout():
    """Rebuild the document a version-1 writer would have produced (no
    topology field existed) and check the digest is the same: RunStore
    keys for legacy runs survive the upgrade."""
    spec = spec_for()
    doc = spec.to_doc()
    legacy = json.loads(json.dumps(doc))  # deep copy
    assert legacy == doc  # nothing topology-shaped to strip
    back = RunSpec.from_json(json.dumps(doc))
    assert back.digest() == spec.digest()
    assert back.params.topology is None


def test_explicit_banyan_differs_from_default_in_doc_only():
    """banyan:32 simulates the identical machine but is a *different*
    spec document (and digest): the operator asked for the topology
    layer, and the run it names carries net.* metrics."""
    default, banyan = spec_for(), spec_for("banyan:32")
    assert default.digest() != banyan.digest()
    assert banyan.to_doc()["params"]["topology"] == "banyan:32"


# -- versioning ----------------------------------------------------------------

@pytest.mark.parametrize("topology", [
    "banyan:8", "fattree:k=4", "torus:4x4x4", "torus:2x2:adaptive",
])
def test_topology_spec_declares_version_2(topology):
    doc = spec_for(topology).to_doc()
    assert doc["schema_version"] == RUN_DOC_SCHEMA_VERSION == 2


@pytest.mark.parametrize("topology", [
    "fattree:k=4", "torus:4x4", "torus:2x2x2:adaptive",
])
def test_topology_round_trips_with_digest(topology):
    spec = spec_for(topology)
    back = RunSpec.from_json(spec.to_json())
    assert back.params.topology == topology
    assert back.digest() == spec.digest()


def test_run_failure_still_emits_version_1():
    # failures gained no topology-shaped fields; their docs are frozen
    doc = json.loads(RunFailure("s", "E", "m").to_json())
    assert doc["schema_version"] == 1


# -- rejection -----------------------------------------------------------------

def test_unknown_topology_kind_rejected_on_decode():
    doc = encode_params(SimParams().replace(num_processors=4,
                                            topology="torus:2x2"))
    doc["topology"] = "hypercube:5"
    with pytest.raises(ValueError, match="hypercube"):
        decode_params(doc)


def test_malformed_topology_rejected_on_decode():
    doc = encode_params(SimParams().replace(num_processors=4,
                                            topology="torus:2x2"))
    doc["topology"] = "torus:0x4"
    with pytest.raises(ValueError):
        decode_params(doc)


def test_oversubscribed_topology_rejected_on_decode():
    doc = encode_params(SimParams().replace(num_processors=4,
                                            topology="torus:2x2"))
    doc["num_processors"] = 9
    with pytest.raises(ValueError, match="does not fit"):
        decode_params(doc)


def test_params_round_trip_preserves_topology():
    params = SimParams().replace(num_processors=16,
                                 topology="fattree:k=4")
    assert decode_params(encode_params(params)) == params
