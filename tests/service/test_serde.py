"""JSON round trips for run documents: RunSpec, RunStats, RunFailure,
SimParams and workload configs — plus the forward-compat guarantee that
unknown schema versions and unknown fields are rejected, never
misread."""

import json

import numpy as np
import pytest

from repro.apps import CholeskyConfig, JacobiConfig, WaterConfig
from repro.apps.matrices import bcsstk14_like
from repro.engine import RunStats
from repro.faults import FaultPlan, NodeCrash
from repro.harness import RunFailure, RunSpec, run_map
from repro.harness.serde import (
    decode_params,
    decode_workload,
    encode_params,
    encode_workload,
)
from repro.params import SimParams


def tiny_spec(**spec_kwargs):
    return RunSpec("jacobi", SimParams().replace(num_processors=2),
                   "cni", workload=JacobiConfig(n=16, iterations=2),
                   **spec_kwargs)


# -- SimParams -----------------------------------------------------------------

def test_params_round_trip():
    params = SimParams().replace(num_processors=8,
                                 reliable_transport=True,
                                 op_deadline_ns=5e6)
    assert decode_params(encode_params(params)) == params


def test_params_round_trip_with_fault_plan():
    plan = FaultPlan(seed=7,
                     schedules=(NodeCrash(node=1, at_ns=1000.0),))
    params = SimParams().replace(fault_plan=plan,
                                 reliable_transport=True)
    doc = encode_params(params)
    assert isinstance(doc["fault_plan"], str)  # travels as grammar text
    back = decode_params(doc)
    assert back.fault_plan.describe() == plan.describe()


def test_params_unknown_field_rejected():
    doc = encode_params(SimParams())
    doc["warp_factor"] = 9
    with pytest.raises(ValueError, match="warp_factor"):
        decode_params(doc)


# -- workload configs ----------------------------------------------------------

@pytest.mark.parametrize("config", [
    JacobiConfig(n=24, iterations=3),
    WaterConfig(n_molecules=8, steps=1),
])
def test_simple_config_round_trip(config):
    assert decode_workload(encode_workload(config)) == config


def test_cholesky_config_round_trips_numpy_band_storage():
    config = CholeskyConfig(matrix=bcsstk14_like(scale=0.03),
                            supernode=4)
    back = decode_workload(encode_workload(config))
    assert type(back) is CholeskyConfig
    assert back.supernode == config.supernode
    assert back.matrix.n == config.matrix.n
    assert np.array_equal(back.matrix.bands, config.matrix.bands)
    assert back.matrix.bands.dtype == config.matrix.bands.dtype


def test_workload_none_passes_through():
    assert encode_workload(None) is None
    assert decode_workload(None) is None


def test_unknown_config_type_rejected():
    doc = {"__kind__": "config", "type": "EvilConfig", "fields": {}}
    with pytest.raises(ValueError, match="EvilConfig"):
        decode_workload(doc)


def test_unknown_config_field_rejected():
    doc = encode_workload(JacobiConfig(n=16, iterations=1))
    doc["fields"]["blast_radius"] = 3
    with pytest.raises(ValueError, match="blast_radius"):
        decode_workload(doc)


# -- RunSpec -------------------------------------------------------------------

def test_run_spec_round_trip_preserves_digest():
    spec = tiny_spec(meta=(("label", "t1"),))
    back = RunSpec.from_json(spec.to_json())
    assert back.digest() == spec.digest()
    assert back.app == spec.app and back.interface == spec.interface
    assert back.meta == spec.meta
    assert back.params == spec.params


def test_run_spec_digest_ignores_meta():
    assert tiny_spec(meta=(("label", "a"),)).digest() == \
        tiny_spec(meta=(("label", "b"),)).digest()


def test_run_spec_unknown_schema_version_rejected():
    doc = json.loads(tiny_spec().to_json())
    doc["schema_version"] = 99
    with pytest.raises(ValueError, match="schema_version 99"):
        RunSpec.from_json(doc)
    doc.pop("schema_version")
    with pytest.raises(ValueError, match="schema_version"):
        RunSpec.from_json(doc)


def test_run_spec_wrong_kind_rejected():
    with pytest.raises(ValueError, match="run_spec"):
        RunSpec.from_json({"kind": "run_stats", "schema_version": 1})


# -- RunStats ------------------------------------------------------------------

def test_run_stats_round_trip_is_bit_identical():
    stats = run_map([tiny_spec()], jobs=1, record=False)[0]
    back = RunStats.from_json(stats.to_json())
    assert back.digest() == stats.digest()
    assert back.metric_kinds == stats.metric_kinds
    assert len(back.per_processor) == len(stats.per_processor)


def test_run_stats_unknown_schema_version_rejected():
    doc = json.loads(run_map([tiny_spec()], jobs=1,
                             record=False)[0].to_json())
    doc["schema_version"] = 2
    with pytest.raises(ValueError, match="schema_version 2"):
        RunStats.from_json(doc)


# -- RunFailure ----------------------------------------------------------------

def test_run_failure_round_trip_preserves_digest():
    failure = RunFailure("spec", "RuntimeTimeout", "node 1 dead")
    back = RunFailure.from_json(failure.to_json())
    assert back == failure
    assert back.digest() == failure.digest()


def test_run_failure_unknown_schema_version_rejected():
    doc = json.loads(RunFailure("s", "E", "m").to_json())
    doc["schema_version"] = 42
    with pytest.raises(ValueError, match="schema_version 42"):
        RunFailure.from_json(doc)
