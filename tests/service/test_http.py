"""The HTTP front end, the urllib client and the ``python -m
repro.service`` CLI, exercised against a real in-process server on an
ephemeral port."""

import json
import threading

import pytest

from repro.apps import JacobiConfig
from repro.harness import RunSpec
from repro.params import SimParams
from repro.service import FarmClient, FarmError, RunFarm
from repro.service.__main__ import main as service_main
from repro.service.http import make_server


def tiny_spec(nprocs=2):
    return RunSpec("jacobi", SimParams().replace(num_processors=nprocs),
                   "cni", workload=JacobiConfig(n=16, iterations=2))


@pytest.fixture
def served_farm(tmp_path):
    farm = RunFarm(store=str(tmp_path), workers=1)
    server = make_server(farm)  # port 0: ephemeral
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    try:
        yield FarmClient(f"http://{host}:{port}"), farm
    finally:
        server.shutdown()
        server.server_close()
        farm.close()


def test_submit_status_result_round_trip(served_farm):
    client, _ = served_farm
    assert client.health() is True
    job = client.submit(tiny_spec())
    stats = client.result(job, timeout=60)
    assert stats.elapsed_ns > 0
    doc = client.status(job)
    assert doc["state"] == "done"
    assert doc["result_digest"] == stats.digest()


def test_second_submission_is_a_cache_hit_over_http(served_farm):
    client, _ = served_farm
    first = client.result(client.submit(tiny_spec()), timeout=60)
    job = client.submit(tiny_spec())
    second = client.result(job, timeout=60)
    assert second.digest() == first.digest()
    assert client.status(job)["from_cache"] is True
    assert client.stats()["metrics"]["service.store.hits"] >= 1


def test_batch_and_sweep_endpoints(served_farm):
    client, _ = served_farm
    batch = client.submit_batch([tiny_spec(1), tiny_spec(2)])
    assert len(batch) == 2
    sweep = client.submit_sweep(
        "jacobi", [1, 2], workload=JacobiConfig(n=16, iterations=1))
    for job in batch + sweep:
        client.result(job, timeout=60)


def test_cancel_endpoint(served_farm):
    client, farm = served_farm
    # submit at low priority behind a running batch so it stays queued
    # long enough to cancel; a False return is also legal if dispatch won
    job = client.submit(tiny_spec(4))
    cancelled = client.cancel(job)
    state = client.status(job)["state"]
    assert cancelled is (state == "cancelled")


def test_malformed_spec_is_a_400(served_farm):
    client, _ = served_farm
    with pytest.raises(FarmError) as info:
        client.submit({"kind": "run_spec", "schema_version": 99})
    assert info.value.status == 400
    assert "schema_version" in info.value.message


def test_unknown_job_and_route_are_404(served_farm):
    client, _ = served_farm
    with pytest.raises(FarmError) as info:
        client.status("job-999999")
    assert info.value.status == 404
    with pytest.raises(FarmError) as info:
        client._request("GET", "/api/v1/nope")
    assert info.value.status == 404


def test_cancelled_job_result_is_410(served_farm):
    client, farm = served_farm
    job = farm.submit(tiny_spec(8), priority=-100)
    if not farm.cancel(job):
        pytest.skip("dispatcher won the race; nothing left to cancel")
    with pytest.raises(FarmError) as info:
        client.result(job, timeout=5)
    assert info.value.status == 410


# -- the CLI -------------------------------------------------------------------

def test_cli_submit_status_fetch_stats(served_farm, tmp_path, capsys):
    client, _ = served_farm
    url = client.base_url
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(tiny_spec().to_json())

    assert service_main(["submit", "--url", url,
                         "--spec-json", str(spec_path)]) == 0
    job = capsys.readouterr().out.strip()
    assert job.startswith("job-")

    out_path = tmp_path / "result.json"
    assert service_main(["fetch", job, "--url", url,
                         "--out", str(out_path)]) == 0
    record = json.loads(out_path.read_text())
    assert record["kind"] == "run_stats"

    assert service_main(["status", job, "--url", url]) == 0
    assert json.loads(capsys.readouterr().out)["state"] == "done"

    assert service_main(["stats", "--url", url]) == 0
    assert "service.store.puts" in capsys.readouterr().out


def test_cli_submit_by_flags(served_farm, capsys):
    client, _ = served_farm
    assert service_main(["submit", "--url", client.base_url,
                         "--app", "jacobi", "--nprocs", "2",
                         "--wait"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("job-")
    assert '"kind": "run_stats"' in out


def test_cli_errors_exit_nonzero(served_farm, capsys):
    client, _ = served_farm
    assert service_main(["submit", "--url", client.base_url]) == 1
    assert "--app or --spec-json" in capsys.readouterr().err
    assert service_main(["status", "job-999999",
                         "--url", client.base_url]) == 1
    assert "unknown job" in capsys.readouterr().err
    # connection refused: unreachable server is an error, not a hang
    assert service_main(["stats", "--url",
                         "http://127.0.0.1:9"]) == 1
    assert "error" in capsys.readouterr().err
