"""Property test: the vectorized two-level hierarchy against a scalar
two-level reference with the same documented semantics.

Reference semantics (mirrors the documented burst model in
repro.memory.cache): every access probes L1 (latency classification
only); an L1 miss probes L2; an L2 miss fills from memory into both
levels; dirty L2 victims are written back; and the dirty marks of
L1-hit *writes* are applied at END of burst against the
post-replacement L2 residency (the model's stated burst semantics).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import CacheHierarchy


class ScalarHierarchy:
    """Obviously-correct per-access model of the documented semantics."""

    def __init__(self, l1_sets, l2_sets):
        self.l1_sets = l1_sets
        self.l2_sets = l2_sets
        self.l1 = {}
        self.l2 = {}
        self.l2_dirty = {}
        self.writebacks = []
        self.l1_hits = 0
        self.l2_hits = 0
        self.memory = 0

    def access(self, line, is_write):
        s1 = line % self.l1_sets
        s2 = line % self.l2_sets
        l1_hit = self.l1.get(s1) == line
        if l1_hit:
            self.l1_hits += 1
        else:
            # L1 miss -> L2 probe
            if self.l2.get(s2) == line:
                self.l2_hits += 1
                if is_write:
                    self.l2_dirty[s2] = True
            else:
                self.memory += 1
                old = self.l2.get(s2)
                if old is not None and self.l2_dirty.get(s2, False):
                    self.writebacks.append(old)
                self.l2[s2] = line
                self.l2_dirty[s2] = is_write
            self.l1[s1] = line
        return l1_hit

    def end_of_write_burst(self, lines):
        """Burst semantics: L1-hit writes dirty their L2 copies at end
        of burst, where still resident."""
        for line in lines:
            s2 = line % self.l2_sets
            if self.l2.get(s2) == line:
                self.l2_dirty[s2] = True

    def flush(self, line):
        s2 = line % self.l2_sets
        if self.l2.get(s2) == line and self.l2_dirty.get(s2, False):
            self.l2_dirty[s2] = False
            return [line]
        return []


@st.composite
def access_scripts(draw):
    l1_sets = draw(st.sampled_from([2, 4]))
    l2_sets = l1_sets * draw(st.sampled_from([2, 4]))
    n_ops = draw(st.integers(1, 60))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["burst", "flush"]))
        if kind == "burst":
            length = draw(st.integers(1, 8))
            lines = draw(st.lists(st.integers(0, 3 * l2_sets - 1),
                                  min_size=length, max_size=length))
            ops.append(("burst", lines, draw(st.booleans())))
        else:
            ops.append(("flush", [draw(st.integers(0, 3 * l2_sets - 1))],
                        False))
    return l1_sets, l2_sets, ops


@given(access_scripts())
@settings(max_examples=150, deadline=None)
def test_hierarchy_matches_scalar_reference(script):
    l1_sets, l2_sets, ops = script
    vec = CacheHierarchy(
        l1_size=l1_sets * 32, l2_size=l2_sets * 32, line_bytes=32,
        l1_cycles=1, l2_cycles=10, memory_cycles=20,
    )
    ref = ScalarHierarchy(l1_sets, l2_sets)

    for kind, lines, is_write in ops:
        if kind == "burst":
            cost = vec.access(np.array(lines, dtype=np.int64), is_write)
            h1_before = ref.l1_hits
            h2_before = ref.l2_hits
            mem_before = ref.memory
            wb_before = len(ref.writebacks)
            l1_hit_writes = []
            for ln in lines:
                hit = ref.access(ln, is_write)
                if hit and is_write:
                    l1_hit_writes.append(ln)
            if is_write:
                ref.end_of_write_burst(l1_hit_writes)
            assert cost.l1_hits == ref.l1_hits - h1_before
            assert cost.l2_hits == ref.l2_hits - h2_before
            assert cost.memory_accesses == ref.memory - mem_before
            assert sorted(cost.writeback_lines.tolist()) == sorted(
                ref.writebacks[wb_before:])
        else:
            got = vec.flush_lines(np.array(lines, dtype=np.int64))
            want = ref.flush(lines[0])
            assert sorted(got.tolist()) == sorted(want)

    # final L2 state agrees
    for s in range(l2_sets):
        want = ref.l2.get(s, -1)
        assert vec.l2.tags[s] == want
        if want != -1:
            assert bool(vec.l2.dirty[s]) == ref.l2_dirty.get(s, False)
