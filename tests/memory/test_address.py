"""Unit tests for address arithmetic."""

import numpy as np
import pytest

from repro.memory import (
    AddressSpace,
    check_power_of_two,
    line_of,
    lines_in_range,
    page_base,
    page_of,
    pages_in_range,
    split_range_by_page,
)


def test_power_of_two_check():
    check_power_of_two(4096, "x")
    for bad in (0, -8, 3, 4095):
        with pytest.raises(ValueError):
            check_power_of_two(bad, "x")


def test_page_and_line_of():
    assert page_of(0, 4096) == 0
    assert page_of(4095, 4096) == 0
    assert page_of(4096, 4096) == 1
    assert line_of(31, 32) == 0
    assert line_of(32, 32) == 1
    assert page_base(3, 4096) == 12288


def test_lines_in_range_basic():
    assert lines_in_range(0, 64, 32).tolist() == [0, 1]
    assert lines_in_range(10, 1, 32).tolist() == [0]
    assert lines_in_range(31, 2, 32).tolist() == [0, 1]
    assert lines_in_range(0, 0, 32).size == 0
    assert lines_in_range(0, -5, 32).size == 0


def test_lines_in_range_unaligned_span():
    # bytes [100, 260) with 32-byte lines: lines 3..8
    assert lines_in_range(100, 160, 32).tolist() == [3, 4, 5, 6, 7, 8]


def test_pages_in_range():
    assert pages_in_range(4000, 200, 4096).tolist() == [0, 1]


def test_split_range_by_page():
    pages, offs, lens = split_range_by_page(4000, 200, 4096)
    assert pages.tolist() == [0, 1]
    assert offs.tolist() == [4000, 0]
    assert lens.tolist() == [96, 104]
    assert lens.sum() == 200


def test_split_range_single_page():
    pages, offs, lens = split_range_by_page(100, 50, 4096)
    assert pages.tolist() == [0]
    assert offs.tolist() == [100]
    assert lens.tolist() == [50]


def test_address_space_layout():
    asp = AddressSpace(page_size=4096, dsm_pages=100, private_pages=10)
    assert asp.dsm_base == 10 * 4096
    assert asp.dsm_limit == 110 * 4096
    assert not asp.is_shared(0)
    assert asp.is_shared(asp.dsm_base)
    assert asp.is_shared(asp.dsm_limit - 1)
    assert not asp.is_shared(asp.dsm_limit)


def test_address_space_page_index_roundtrip():
    asp = AddressSpace(page_size=4096, dsm_pages=100)
    for p in (0, 1, 50, 99):
        addr = asp.shared_page_addr(p)
        assert asp.shared_page_index(addr) == p
        assert asp.shared_page_index(addr + 4095) == p


def test_address_space_errors():
    asp = AddressSpace(page_size=4096, dsm_pages=4)
    with pytest.raises(ValueError):
        asp.shared_page_index(0)
    with pytest.raises(ValueError):
        asp.shared_page_addr(4)
    with pytest.raises(ValueError):
        AddressSpace(page_size=1000, dsm_pages=4)
    with pytest.raises(ValueError):
        AddressSpace(page_size=4096, dsm_pages=0)
