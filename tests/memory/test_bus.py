"""Unit tests for the memory bus."""

import numpy as np
import pytest

from repro.engine import Simulator
from repro.memory import MemoryBus
from repro.params import SimParams


def make_bus():
    sim = Simulator()
    params = SimParams()
    return sim, params, MemoryBus(sim, params, node_id=0)


def test_dma_time_matches_table1():
    sim, p, bus = make_bus()
    # 4 KB page: 4 + 2*512 bus cycles at 40 ns
    expected = (4 + 2 * 512) * 40.0
    assert bus.dma_transfer_ns(4096) == pytest.approx(expected)


def test_dma_holds_bus_and_serializes():
    sim, p, bus = make_bus()
    done = []

    def master(tag, nbytes):
        yield from bus.dma(nbytes)
        done.append((tag, sim.now))

    sim.spawn(master("a", 4096), "a")
    sim.spawn(master("b", 4096), "b")
    sim.run()
    t = bus.dma_transfer_ns(4096)
    assert done == [("a", pytest.approx(t)), ("b", pytest.approx(2 * t))]
    assert bus.dma_transfers == 2
    assert bus.dma_bytes == 8192


def test_dma_rejects_negative():
    sim, p, bus = make_bus()

    def master():
        yield from bus.dma(-1)

    with pytest.raises(ValueError):
        # error surfaces when the generator first runs
        sim.run_process(master())


def test_snoopers_see_write_traffic():
    sim, p, bus = make_bus()
    seen = []
    bus.add_snooper(lambda node, lines: seen.append((node, lines.tolist())))
    bus.cpu_write_traffic(np.array([10, 11], dtype=np.int64))
    assert seen == [(0, [10, 11])]
    words_per_line = p.cache_line_bytes // p.bus_word_bytes
    assert bus.writeback_words == 2 * words_per_line


def test_empty_write_traffic_skips_snoopers():
    sim, p, bus = make_bus()
    seen = []
    bus.add_snooper(lambda node, lines: seen.append(lines))
    bus.cpu_write_traffic(np.empty(0, dtype=np.int64))
    assert seen == []
    assert bus.writeback_words == 0


def test_utilization_tracks_hold_time():
    sim, p, bus = make_bus()

    def master():
        yield from bus.dma(1024)

    sim.run_process(master())
    assert bus.utilization_ns == pytest.approx(bus.dma_transfer_ns(1024))
