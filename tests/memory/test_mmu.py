"""Unit tests for host MMU and board TLB/RTLB."""

import numpy as np
import pytest

from repro.memory import BoardTLB, HostMMU, TranslationError


def test_map_is_idempotent():
    mmu = HostMMU(4096)
    f1 = mmu.map_page(7)
    f2 = mmu.map_page(7)
    assert f1 == f2
    assert len(mmu) == 1


def test_frames_are_not_identity():
    mmu = HostMMU(4096)
    assert mmu.map_page(7) != 7 or mmu.map_page(8) != 8


def test_v2p_p2v_roundtrip():
    mmu = HostMMU(4096)
    for v in (0, 5, 123):
        f = mmu.map_page(v)
        assert mmu.translate_v2p(v) == f
        assert mmu.translate_p2v(f) == v


def test_unmap():
    mmu = HostMMU(4096)
    f = mmu.map_page(3)
    mmu.unmap_page(3)
    with pytest.raises(TranslationError):
        mmu.translate_v2p(3)
    assert mmu.translate_p2v(f) is None
    mmu.unmap_page(3)  # idempotent


def test_distinct_pages_distinct_frames():
    mmu = HostMMU(4096)
    frames = {mmu.map_page(v) for v in range(100)}
    assert len(frames) == 100


def test_board_tlb_mirror():
    mmu = HostMMU(4096)
    tlb = BoardTLB(mmu)
    f = mmu.map_page(9)
    tlb.install(9)
    assert 9 in tlb
    assert tlb.translate_v2p(9) == f
    assert tlb.rtlb_p2v(f) == 9
    assert tlb.lookups == 1 and tlb.reverse_lookups == 1


def test_board_tlb_miss_raises():
    mmu = HostMMU(4096)
    tlb = BoardTLB(mmu)
    with pytest.raises(TranslationError):
        tlb.translate_v2p(1)


def test_rtlb_unmapped_frame_aborts_snoop():
    mmu = HostMMU(4096)
    tlb = BoardTLB(mmu)
    assert tlb.rtlb_p2v(0xdead) is None


def test_rtlb_vectorized():
    mmu = HostMMU(4096)
    tlb = BoardTLB(mmu)
    frames = []
    for v in (1, 2, 3):
        frames.append(mmu.map_page(v))
        tlb.install(v)
    probe = np.array([frames[0], 0x9999, frames[2]], dtype=np.int64)
    assert tlb.rtlb_p2v_many(probe).tolist() == [1, -1, 3]


def test_board_evict():
    mmu = HostMMU(4096)
    tlb = BoardTLB(mmu)
    f = mmu.map_page(4)
    tlb.install(4)
    tlb.evict(4)
    assert 4 not in tlb
    assert tlb.rtlb_p2v(f) is None
    tlb.evict(4)  # idempotent


def test_host_mmu_validates_page_size():
    with pytest.raises(ValueError):
        HostMMU(0)
