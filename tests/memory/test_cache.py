"""Unit + property tests for the cache model.

The load-bearing test is the hypothesis comparison of the vectorized
burst engine against the scalar :class:`ReferenceCache` on random access
streams with random burst boundaries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import CacheHierarchy, CacheLevel, ReferenceCache


def level(nlines=8, track_dirty=True):
    return CacheLevel(nlines * 32, 32, "T", track_dirty=track_dirty)


def test_cold_miss_then_hit():
    c = level()
    r = c.burst(np.array([5]), is_write=False)
    assert (r.hits, r.misses) == (0, 1)
    r = c.burst(np.array([5]), is_write=False)
    assert (r.hits, r.misses) == (1, 0)


def test_conflict_eviction_same_set():
    c = level(nlines=8)
    c.burst(np.array([0]), is_write=True)       # line 0 dirty in set 0
    r = c.burst(np.array([8]), is_write=False)  # set 0 conflict
    assert r.misses == 1
    assert r.evicted_lines.tolist() == [0]      # dirty occupant written back


def test_clean_eviction_no_writeback():
    c = level(nlines=8)
    c.burst(np.array([0]), is_write=False)
    r = c.burst(np.array([8]), is_write=False)
    assert r.misses == 1
    assert r.evicted_lines.size == 0


def test_read_A_B_A_evicts_dirty_entry_occupant():
    # Regression for the subtle case: the entry occupant is evicted at
    # the first MISS of the group, which need not be the first access.
    c = level(nlines=8)
    c.burst(np.array([0]), is_write=True)  # A dirty
    r = c.burst(np.array([0, 8, 0]), is_write=False)
    assert (r.hits, r.misses) == (1, 2)
    assert r.evicted_lines.tolist() == [0]   # dirty A written back once
    # A was reloaded clean; evicting it now must not write back.
    r2 = c.burst(np.array([8]), is_write=False)
    assert r2.evicted_lines.size == 0


def test_write_burst_intra_burst_evictions_are_dirty():
    c = level(nlines=4)
    # lines 0,4,8 all map to set 0; each later miss evicts a just-written line
    r = c.burst(np.array([0, 4, 8]), is_write=True)
    assert r.misses == 3
    assert sorted(r.evicted_lines.tolist()) == [0, 4]


def test_write_hit_then_conflict_writes_back():
    c = level(nlines=4)
    c.burst(np.array([0]), is_write=False)       # clean
    r = c.burst(np.array([0, 4]), is_write=True)  # hit-write dirties, then evict
    assert r.evicted_lines.tolist() == [0]


def test_drop_returns_dirty_lines_only():
    c = level(nlines=8)
    c.burst(np.array([1, 2]), is_write=True)
    c.burst(np.array([3]), is_write=False)
    dirty = c.drop(np.array([1, 2, 3, 4]))
    assert sorted(dirty.tolist()) == [1, 2]
    assert not c.resident(1) and not c.resident(3)


def test_clean_writes_back_and_keeps_resident():
    c = level(nlines=8)
    c.burst(np.array([1, 2]), is_write=True)
    flushed = c.clean(np.array([1, 2, 3]))
    assert sorted(flushed.tolist()) == [1, 2]
    assert c.resident(1) and c.resident(2)
    # second flush: nothing dirty anymore
    assert c.clean(np.array([1, 2])).size == 0


def test_dirty_subset():
    c = level(nlines=8)
    c.burst(np.array([1]), is_write=True)
    c.burst(np.array([2]), is_write=False)
    assert c.dirty_subset(np.array([1, 2, 3])).tolist() == [1]


def test_empty_burst():
    c = level()
    r = c.burst(np.empty(0, dtype=np.int64), is_write=True)
    assert (r.hits, r.misses) == (0, 0)
    assert r.evicted_lines.size == 0


# ---------------------------------------------------------------- property --

@st.composite
def access_script(draw):
    """Random (line, is_write) stream plus burst segmentation."""
    nsets = draw(st.sampled_from([2, 4, 8]))
    n = draw(st.integers(1, 120))
    lines = draw(
        st.lists(st.integers(0, 4 * nsets - 1), min_size=n, max_size=n)
    )
    # homogeneous bursts: segment the stream, each segment all-R or all-W
    n_bursts = draw(st.integers(1, max(1, n // 3)))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(1, n - 1), min_size=0, max_size=n_bursts,
                unique=True,
            )
        )
    ) if n > 1 else []
    writes = draw(
        st.lists(st.booleans(), min_size=len(cuts) + 1, max_size=len(cuts) + 1)
    )
    return nsets, lines, cuts, writes


@given(access_script())
@settings(max_examples=200, deadline=None)
def test_burst_engine_matches_scalar_reference(script):
    nsets, lines, cuts, writes = script
    vec = CacheLevel(nsets * 32, 32, "V", track_dirty=True)
    ref = ReferenceCache(nsets)

    bounds = [0] + cuts + [len(lines)]
    for b in range(len(bounds) - 1):
        seg = lines[bounds[b]:bounds[b + 1]]
        if not seg:
            continue
        w = writes[b]
        ref_hits = 0
        ref_evicted = []
        for ln in seg:
            hit, ev = ref.access(ln, w)
            ref_hits += hit
            if ev is not None:
                ref_evicted.append(ev)
        r = vec.burst(np.array(seg, dtype=np.int64), is_write=w)
        assert r.hits == ref_hits
        assert r.misses == len(seg) - ref_hits
        assert sorted(r.evicted_lines.tolist()) == sorted(ref_evicted)

    # final state agrees
    for s in range(nsets):
        ref_tag = ref.tags.get(s, -1)
        assert vec.tags[s] == ref_tag
        if ref_tag != -1:
            assert bool(vec.dirty[s]) == ref.dirty.get(s, False)


# ------------------------------------------------------------- hierarchy ----

def hierarchy(l1_lines=4, l2_lines=16):
    return CacheHierarchy(
        l1_size=l1_lines * 32,
        l2_size=l2_lines * 32,
        line_bytes=32,
        l1_cycles=1,
        l2_cycles=10,
        memory_cycles=20,
    )


def test_hierarchy_cold_access_costs():
    h = hierarchy()
    cost = h.access(np.array([0]), is_write=False)
    assert cost.l1_hits == 0
    assert cost.l2_hits == 0
    assert cost.memory_accesses == 1
    assert cost.cpu_cycles == 1 + 10 + 20


def test_hierarchy_l1_hit_cost():
    h = hierarchy()
    h.access(np.array([0]), is_write=False)
    cost = h.access(np.array([0]), is_write=False)
    assert cost.l1_hits == 1 and cost.cpu_cycles == 1


def test_hierarchy_l2_hit_after_l1_conflict():
    h = hierarchy(l1_lines=4, l2_lines=64)
    h.access(np.array([0]), is_write=False)
    h.access(np.array([4]), is_write=False)   # evicts 0 from L1, stays in L2
    cost = h.access(np.array([0]), is_write=False)
    assert cost.l1_hits == 0
    assert cost.l2_hits == 1
    assert cost.cpu_cycles == 1 + 10


def test_hierarchy_writeback_on_l2_conflict():
    h = hierarchy(l1_lines=4, l2_lines=4)
    h.access(np.array([0]), is_write=True)
    cost = h.access(np.array([4]), is_write=False)  # conflicts in both
    assert cost.writeback_lines.tolist() == [0]


def test_hierarchy_l1_hit_write_dirties_l2():
    h = hierarchy(l1_lines=4, l2_lines=4)
    h.access(np.array([0]), is_write=False)  # clean in both
    h.access(np.array([0]), is_write=True)   # L1 hit, must dirty L2 copy
    flushed = h.flush_lines(np.array([0]))
    assert flushed.tolist() == [0]


def test_hierarchy_flush_then_flush_is_empty():
    h = hierarchy()
    h.access(np.array([1, 2, 3]), is_write=True)
    first = h.flush_lines(np.array([1, 2, 3]))
    assert sorted(first.tolist()) == [1, 2, 3]
    assert h.flush_lines(np.array([1, 2, 3])).size == 0


def test_hierarchy_invalidate_drops_without_writeback():
    h = hierarchy()
    h.access(np.array([1]), is_write=True)
    h.invalidate_lines(np.array([1]))
    assert h.flush_lines(np.array([1])).size == 0
    cost = h.access(np.array([1]), is_write=False)
    assert cost.memory_accesses == 1  # truly gone


def test_hierarchy_dirty_lines_of_is_nondestructive():
    h = hierarchy()
    h.access(np.array([1, 2]), is_write=True)
    assert sorted(h.dirty_lines_of(np.array([1, 2, 3])).tolist()) == [1, 2]
    assert sorted(h.dirty_lines_of(np.array([1, 2, 3])).tolist()) == [1, 2]


def test_hierarchy_stats_accumulate():
    h = hierarchy()
    h.access(np.array([0, 1, 0]), is_write=False)
    assert h.stats_l1_hits == 1
    assert h.stats_memory == 2


@given(
    st.lists(
        st.tuples(st.integers(0, 31), st.booleans()), min_size=1, max_size=80
    )
)
@settings(max_examples=100, deadline=None)
def test_hierarchy_cost_classification_is_exhaustive(stream):
    """Every access is exactly one of: L1 hit, L2 hit, memory access."""
    h = hierarchy(l1_lines=2, l2_lines=8)
    for line, w in stream:
        cost = h.access(np.array([line]), is_write=w)
        assert cost.l1_hits + cost.l2_hits + cost.memory_accesses == 1
