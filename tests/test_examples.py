"""The examples are part of the public surface: they must keep running.

Each example's ``main()`` is executed via runpy; assertions inside the
examples (result correctness, invariant checks) do the verifying.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p.name for p in (Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name, capsys):
    path = Path(__file__).parent.parent / "examples" / name
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 50  # every example narrates what it showed
