"""The parallel sweep executor: determinism, ordering, metric merging."""

import pickle

import pytest

from repro.apps import JacobiConfig
from repro.harness import (
    GLOBAL_METRICS_LOG,
    RunSpec,
    default_jobs,
    execute_run,
    merge_run_metrics,
    run_map,
    set_default_jobs,
)
from repro.params import SimParams


def specs_grid(procs=(1, 2), ifaces=("cni", "standard")):
    wl = JacobiConfig(n=32, iterations=2)
    return [RunSpec("jacobi", SimParams().replace(num_processors=p),
                    iface, wl)
            for p in procs for iface in ifaces]


# -- determinism ---------------------------------------------------------------

def test_jobs_1_and_jobs_n_digests_identical():
    """The executor's core guarantee: per-point RunStats.digest() values
    are bit-identical between the in-process path and a process pool."""
    specs = specs_grid()
    serial = run_map(specs, jobs=1, record=False)
    parallel = run_map(specs, jobs=4, record=False)
    assert [s.digest() for s in serial] == [s.digest() for s in parallel]


def test_results_preserve_spec_order():
    specs = specs_grid(procs=(2, 1, 4), ifaces=("cni",))
    runs = run_map(specs, jobs=2, record=False)
    # each spec's processor count is visible in its per_processor list
    assert [len(r.per_processor) for r in runs] == [2, 1, 4]


def test_execute_run_is_the_jobs_1_path():
    spec = specs_grid()[0]
    assert execute_run(spec, 0).digest() == \
        run_map([spec], jobs=1, record=False)[0].digest()


# -- the spec ------------------------------------------------------------------

def test_runspec_is_picklable():
    spec = specs_grid()[0]
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec


def test_unknown_app_rejected():
    spec = RunSpec("fortran_weather_model", SimParams(), "cni", None)
    with pytest.raises(ValueError, match="unknown app"):
        execute_run(spec)


def test_bad_jobs_rejected():
    with pytest.raises(ValueError):
        run_map(specs_grid(), jobs=0)
    with pytest.raises(ValueError):
        set_default_jobs(0)


def test_empty_spec_list():
    assert run_map([], jobs=4) == []


def test_default_jobs_setting_round_trips():
    before = default_jobs()
    try:
        assert set_default_jobs(3) == 3
        assert default_jobs() == 3
        assert set_default_jobs(None) >= 1  # None -> all cores
    finally:
        set_default_jobs(before)


# -- parent-side recording -----------------------------------------------------

def test_run_map_records_with_digest():
    GLOBAL_METRICS_LOG.clear()
    specs = specs_grid(procs=(2,), ifaces=("cni",))
    runs = run_map(specs, jobs=1)
    try:
        assert len(GLOBAL_METRICS_LOG) == 1
        entry = GLOBAL_METRICS_LOG.entries[0]
        assert entry["app"] == "jacobi"
        assert entry["interface"] == "cni"
        assert entry["nprocs"] == 2
        assert entry["digest"] == runs[0].digest()
        assert entry["metrics"] == runs[0].metrics
    finally:
        GLOBAL_METRICS_LOG.clear()


def test_run_map_meta_lands_in_log():
    GLOBAL_METRICS_LOG.clear()
    spec = RunSpec("jacobi", SimParams().replace(num_processors=2), "cni",
                   JacobiConfig(n=32, iterations=2),
                   meta=(("cell_loss_rate", 0.01),))
    run_map([spec], jobs=1)
    try:
        assert GLOBAL_METRICS_LOG.entries[0]["cell_loss_rate"] == 0.01
    finally:
        GLOBAL_METRICS_LOG.clear()


# -- metric-tree merging -------------------------------------------------------

def test_merge_run_metrics_counters_sum_gauges_max():
    runs = run_map(specs_grid(procs=(1, 2), ifaces=("cni",)), record=False)
    merged = merge_run_metrics(runs)
    events = merged.get("engine.events_processed")
    assert events.kind == "counter"
    assert events.value == sum(r.metrics["engine.events_processed"]
                               for r in runs)
    hwm = merged.get("engine.event_queue_hwm")
    assert hwm.kind == "gauge"
    assert hwm.value == max(r.metrics["engine.event_queue_hwm"]
                            for r in runs)


def test_merge_run_metrics_histograms_add_bucketwise():
    runs = run_map(specs_grid(procs=(2, 2), ifaces=("cni",)), record=False)
    merged = merge_run_metrics(runs)
    hist = merged.get("spans.dma_ns")
    assert hist.kind == "histogram"
    assert hist.count == sum(r.metrics["spans.dma_ns"]["count"]
                             for r in runs)
    assert hist.sum == pytest.approx(sum(r.metrics["spans.dma_ns"]["sum"]
                                         for r in runs))


def test_merge_into_existing_registry_with_prefix():
    from repro.obs import MetricsRegistry

    runs = run_map(specs_grid(procs=(2,), ifaces=("cni",)), record=False)
    target = MetricsRegistry()
    merge_run_metrics(runs, into=target, prefix="sweep")
    assert "sweep.engine.events_processed" in target
