"""The parallel sweep executor: determinism, ordering, metric merging,
and the warm-pool lifecycle (spawn-once reuse, chunked dispatch,
no-orphan teardown)."""

import pickle

import pytest

from repro.apps import JacobiConfig
from repro.harness import (
    GLOBAL_METRICS_LOG,
    RunFailure,
    RunSpec,
    default_jobs,
    execute_run,
    merge_run_metrics,
    pool_metrics,
    pool_size,
    run_map,
    set_default_jobs,
    shutdown_pool,
)
from repro.harness.parallel import _chunksize, _encode_chunk
from repro.params import SimParams


@pytest.fixture(autouse=True)
def _force_pool(monkeypatch):
    """Exercise the real pool even on a 1-core host — the cpu-aware
    clamp would otherwise route jobs>1 inline (docs/parallel_runs.md)."""
    monkeypatch.setenv("REPRO_POOL_FORCE", "1")


def specs_grid(procs=(1, 2), ifaces=("cni", "standard")):
    wl = JacobiConfig(n=32, iterations=2)
    return [RunSpec("jacobi", SimParams().replace(num_processors=p),
                    iface, wl)
            for p in procs for iface in ifaces]


# -- determinism ---------------------------------------------------------------

def test_jobs_1_and_jobs_n_digests_identical():
    """The executor's core guarantee: per-point RunStats.digest() values
    are bit-identical between the in-process path and a process pool."""
    specs = specs_grid()
    serial = run_map(specs, jobs=1, record=False)
    parallel = run_map(specs, jobs=4, record=False)
    assert [s.digest() for s in serial] == [s.digest() for s in parallel]


def test_results_preserve_spec_order():
    specs = specs_grid(procs=(2, 1, 4), ifaces=("cni",))
    runs = run_map(specs, jobs=2, record=False)
    # each spec's processor count is visible in its per_processor list
    assert [len(r.per_processor) for r in runs] == [2, 1, 4]


def test_execute_run_is_the_jobs_1_path():
    spec = specs_grid()[0]
    assert execute_run(spec, 0).digest() == \
        run_map([spec], jobs=1, record=False)[0].digest()


# -- the spec ------------------------------------------------------------------

def test_runspec_is_picklable():
    spec = specs_grid()[0]
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec


def test_unknown_app_rejected():
    spec = RunSpec("fortran_weather_model", SimParams(), "cni", None)
    with pytest.raises(ValueError, match="unknown app"):
        execute_run(spec)


def test_bad_jobs_rejected():
    with pytest.raises(ValueError):
        run_map(specs_grid(), jobs=0)
    with pytest.raises(ValueError):
        set_default_jobs(0)


def test_empty_spec_list():
    assert run_map([], jobs=4) == []


def test_default_jobs_setting_round_trips():
    before = default_jobs()
    try:
        assert set_default_jobs(3) == 3
        assert default_jobs() == 3
        assert set_default_jobs(None) >= 1  # None -> all cores
    finally:
        set_default_jobs(before)


# -- parent-side recording -----------------------------------------------------

def test_run_map_records_with_digest():
    GLOBAL_METRICS_LOG.clear()
    specs = specs_grid(procs=(2,), ifaces=("cni",))
    runs = run_map(specs, jobs=1)
    try:
        assert len(GLOBAL_METRICS_LOG) == 1
        entry = GLOBAL_METRICS_LOG.entries[0]
        assert entry["app"] == "jacobi"
        assert entry["interface"] == "cni"
        assert entry["nprocs"] == 2
        assert entry["digest"] == runs[0].digest()
        assert entry["metrics"] == runs[0].metrics
    finally:
        GLOBAL_METRICS_LOG.clear()


def test_run_map_meta_lands_in_log():
    GLOBAL_METRICS_LOG.clear()
    spec = RunSpec("jacobi", SimParams().replace(num_processors=2), "cni",
                   JacobiConfig(n=32, iterations=2),
                   meta=(("cell_loss_rate", 0.01),))
    run_map([spec], jobs=1)
    try:
        assert GLOBAL_METRICS_LOG.entries[0]["cell_loss_rate"] == 0.01
    finally:
        GLOBAL_METRICS_LOG.clear()


# -- metric-tree merging -------------------------------------------------------

def test_merge_run_metrics_counters_sum_gauges_max():
    runs = run_map(specs_grid(procs=(1, 2), ifaces=("cni",)), record=False)
    merged = merge_run_metrics(runs)
    events = merged.get("engine.events_processed")
    assert events.kind == "counter"
    assert events.value == sum(r.metrics["engine.events_processed"]
                               for r in runs)
    hwm = merged.get("engine.event_queue_hwm")
    assert hwm.kind == "gauge"
    assert hwm.value == max(r.metrics["engine.event_queue_hwm"]
                            for r in runs)


def test_merge_run_metrics_histograms_add_bucketwise():
    runs = run_map(specs_grid(procs=(2, 2), ifaces=("cni",)), record=False)
    merged = merge_run_metrics(runs)
    hist = merged.get("spans.dma_ns")
    assert hist.kind == "histogram"
    assert hist.count == sum(r.metrics["spans.dma_ns"]["count"]
                             for r in runs)
    assert hist.sum == pytest.approx(sum(r.metrics["spans.dma_ns"]["sum"]
                                         for r in runs))


def test_merge_into_existing_registry_with_prefix():
    from repro.obs import MetricsRegistry

    runs = run_map(specs_grid(procs=(2,), ifaces=("cni",)), record=False)
    target = MetricsRegistry()
    merge_run_metrics(runs, into=target, prefix="sweep")
    assert "sweep.engine.events_processed" in target


# -- warm-pool lifecycle -------------------------------------------------------

def _pool_stat(name):
    return pool_metrics()[f"harness.pool.{name}"]


def test_warm_pool_reused_across_run_map_calls():
    """Consecutive run_map calls share one pool (a single cold start)
    and stay digest-identical to the --jobs 1 path throughout."""
    shutdown_pool()
    specs = specs_grid()
    baseline = [s.digest() for s in run_map(specs, jobs=1, record=False)]
    spawns0 = _pool_stat("spawns")
    try:
        first = run_map(specs, jobs=2, record=False)
        second = run_map(specs, jobs=2, record=False)
        assert [s.digest() for s in first] == baseline
        assert [s.digest() for s in second] == baseline
        assert _pool_stat("spawns") == spawns0 + 1
        assert pool_size() >= 2
    finally:
        shutdown_pool()
    assert pool_size() == 0


def test_pool_reuse_counts_warm_hits():
    shutdown_pool()
    specs = specs_grid(procs=(1, 2), ifaces=("cni",))
    try:
        run_map(specs, jobs=2, record=False)       # cold start
        warm0 = _pool_stat("warm_hits")
        run_map(specs, jobs=2, record=False)       # warm hit
        assert _pool_stat("warm_hits") == warm0 + 1
    finally:
        shutdown_pool()


def test_chunked_dispatch_preserves_spec_and_log_order():
    """chunksize=1 maximizes out-of-order completion; results and the
    parent-side metrics-log recording must still land in spec order."""
    specs = specs_grid(procs=(4, 1, 2), ifaces=("cni",))
    GLOBAL_METRICS_LOG.clear()
    serial = run_map(specs, jobs=1)
    serial_digests = [e["digest"] for e in GLOBAL_METRICS_LOG.entries]
    GLOBAL_METRICS_LOG.clear()
    try:
        chunked = run_map(specs, jobs=2, chunksize=1)
        assert [len(r.per_processor) for r in chunked] == [4, 1, 2]
        assert [r.digest() for r in chunked] == \
            [r.digest() for r in serial]
        assert [e["digest"] for e in GLOBAL_METRICS_LOG.entries] == \
            serial_digests
    finally:
        GLOBAL_METRICS_LOG.clear()
        shutdown_pool()


def test_any_chunksize_is_digest_identical():
    specs = specs_grid()
    baseline = [s.digest() for s in run_map(specs, jobs=1, record=False)]
    try:
        for cs in (1, 3, len(specs)):
            runs = run_map(specs, jobs=2, record=False, chunksize=cs)
            assert [r.digest() for r in runs] == baseline, f"chunksize={cs}"
    finally:
        shutdown_pool()


def test_bad_chunksize_rejected():
    with pytest.raises(ValueError):
        run_map(specs_grid(), jobs=2, record=False, chunksize=0)


def test_chunksize_heuristic_targets_two_chunks_per_worker():
    assert _chunksize(8, 2) == 2
    assert _chunksize(8, 4) == 1
    assert _chunksize(1, 8) == 1
    assert _chunksize(100, 4) == 13


def test_chunk_encoding_pickles_shared_objects_once():
    wl = JacobiConfig(n=32, iterations=2)
    params = SimParams().replace(num_processors=2)
    specs = [RunSpec("jacobi", params, iface, wl)
             for iface in ("cni", "standard")]
    _, shared, points = _encode_chunk(0, specs, "raise")
    assert len(shared) == 2  # one params + one workload, not four objects
    assert [p[0] for p in points] == [0, 1]  # global indices preserved
    # value-equal but distinct params objects dedupe too
    specs2 = [RunSpec("jacobi", SimParams().replace(num_processors=2),
                      "cni", wl) for _ in range(3)]
    _, shared2, _ = _encode_chunk(4, specs2, "raise")
    assert len(shared2) == 2


def test_untyped_error_tears_pool_down_without_orphans():
    """A worker raising a non-simulation error (here: unknown app)
    aborts the sweep, shuts the pool down, and the next run_map
    cold-starts cleanly."""
    shutdown_pool()
    good = specs_grid(procs=(1,), ifaces=("cni",))[0]
    bomb = RunSpec("no_such_app", SimParams(), "cni", None)
    spawns0 = _pool_stat("spawns")
    with pytest.raises(ValueError, match="unknown app"):
        run_map([good, bomb, good], jobs=2, record=False, chunksize=1)
    assert pool_size() == 0
    try:
        runs = run_map([good, good], jobs=2, record=False)
        assert runs[0].digest() == runs[1].digest()
        assert _pool_stat("spawns") == spawns0 + 2  # broken pool + fresh one
    finally:
        shutdown_pool()


def test_on_error_record_deterministic_through_the_pool():
    """Typed failures stay deterministic RunFailure slots in spec order
    at any jobs/chunksize (the chaos campaign checks the same contract
    at scale under -m chaos)."""
    from repro.faults import FaultPlan, NodeCrash

    base = SimParams().replace(
        num_processors=2, reliable_transport=True,
        op_deadline_ns=20_000_000.0, runtime_send_retries=1)
    crash = FaultPlan(seed=5,
                      schedules=(NodeCrash(node=1, at_ns=200_000.0),))
    wl = JacobiConfig(n=16, iterations=1)
    specs = [
        RunSpec("jacobi", base, "cni", wl),
        RunSpec("jacobi", base.replace(fault_plan=crash), "cni", wl),
        RunSpec("jacobi", base, "standard", wl),
    ]
    serial = run_map(specs, jobs=1, record=False, on_error="record")
    try:
        pooled = run_map(specs, jobs=2, record=False, on_error="record",
                         chunksize=1)
        assert [r.digest() for r in serial] == [r.digest() for r in pooled]
        assert [isinstance(r, RunFailure) for r in serial] == \
            [isinstance(r, RunFailure) for r in pooled]
        assert isinstance(serial[1], RunFailure), \
            "the crash plan should kill its point"
    finally:
        shutdown_pool()


def test_shutdown_pool_is_idempotent():
    shutdown_pool()
    shutdown_pool()
    assert pool_size() == 0
