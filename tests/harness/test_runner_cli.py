"""Option handling of the ``python -m repro.harness`` CLI: every parse
error must exit non-zero with a message on stderr — never a traceback,
never a silent success."""

import pytest

from repro.harness.runner import main


def test_bad_jobs_value_exits_nonzero(capsys):
    assert main(["--jobs", "nope", "fig2"]) == 1
    err = capsys.readouterr().err
    assert "--jobs" in err


def test_negative_jobs_value_exits_nonzero(capsys):
    assert main(["--jobs", "0", "fig2"]) == 1
    assert "--jobs" in capsys.readouterr().err


def test_flag_missing_value_exits_nonzero():
    with pytest.raises(SystemExit) as info:
        main(["fig2", "--jobs"])
    assert "--jobs needs a value" in str(info.value)


def test_unknown_experiment_id_exits_nonzero(capsys):
    assert main(["no_such_experiment"]) == 2
    err = capsys.readouterr().err
    assert "no_such_experiment" in err
    assert "fig2" in err  # the message lists the valid choices


def test_bad_deadline_and_heartbeat_exit_nonzero(capsys):
    assert main(["--deadline-ns", "soon", "fig2"]) == 1
    assert "--deadline-ns" in capsys.readouterr().err
    assert main(["--heartbeat-ns", "often", "fig2"]) == 1
    assert "--heartbeat-ns" in capsys.readouterr().err


def test_bad_collectives_value_exits_nonzero(capsys):
    assert main(["--collectives", "carrier-pigeon", "fig2"]) == 1
    assert "--collectives" in capsys.readouterr().err


def test_bad_fault_plan_exits_nonzero(capsys):
    assert main(["--fault-plan", "gibberish((", "fig2"]) == 1
    assert "--fault-plan" in capsys.readouterr().err


def test_no_arguments_prints_usage(capsys):
    assert main([]) == 2
    assert "experiments:" in capsys.readouterr().out


def test_metrics_bad_nprocs_exits_nonzero(capsys):
    assert main(["metrics", "--nprocs", "zonk"]) == 2
    assert "--nprocs" in capsys.readouterr().err
    assert main(["metrics", "--nprocs", "0"]) == 2
    assert "--nprocs" in capsys.readouterr().err


def test_metrics_bad_interface_exits_nonzero(capsys):
    assert main(["metrics", "--interface", "rfc1149"]) == 2
    assert "--interface" in capsys.readouterr().err


def test_metrics_unrecognized_arguments_exit_nonzero(capsys):
    assert main(["metrics", "--frobnicate"]) == 2
    assert "--frobnicate" in capsys.readouterr().err
