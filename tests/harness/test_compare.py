"""Tests for the paper-vs-measured comparison tooling."""

import pytest

from repro.harness.compare import (
    figure_verdict,
    parse_results_file,
    render_experiments_md,
    table_verdict,
)
from repro.harness.paper import (
    FIGURE_CLAIMS,
    PAPER_OVERHEAD_TABLES,
    PAPER_TABLE5,
    claim_for,
)
from repro.harness.report import format_series, format_table
from repro.harness.results import SeriesResult, TableResult

SAMPLE = """\
== fig2-jacobi-small ==
  processors  cni_speedup network_cache_hit_ratio standard_speedup
           1            1                       0                1
           2          1.5                      90              1.2
           8          2.5                      95              2.0

== table2-jacobi-overhead ==
row               time_cni_cycles time_standard_cycles
synch_overhead        1.2e+06          2.1e+06
synch_delay           3.7e+06           4.6e+06
computation           3.6e+06          3.6e+06
total                 8.5e+06          10.3e+06
"""


def test_parse_roundtrip(tmp_path):
    p = tmp_path / "results.txt"
    p.write_text(SAMPLE)
    parsed = parse_results_file(str(p))
    assert set(parsed) == {"fig2", "table2"}
    fig2 = parsed["fig2"]
    assert fig2.xs == [1.0, 2.0, 8.0]
    assert fig2.get("cni_speedup") == [1.0, 1.5, 2.5]
    t2 = parsed["table2"]
    assert t2.cell("total", "time_cni_cycles") == 8.5e6


def test_parse_formatted_output_roundtrip(tmp_path):
    r = SeriesResult(name="fig14-x", x_label="message_bytes",
                     xs=[0.0, 4096.0])
    r.series["cni_latency_us"] = [10.0, 100.0]
    r.series["standard_latency_us"] = [20.0, 150.0]
    p = tmp_path / "out.txt"
    p.write_text(format_series(r) + "\n\n")
    parsed = parse_results_file(str(p))
    assert parsed["fig14"].get("cni_latency_us") == [10.0, 100.0]


def test_figure_verdict_speedup_holds():
    r = SeriesResult(name="fig2", x_label="processors", xs=[1, 2, 8])
    r.series["cni_speedup"] = [1.0, 1.5, 2.5]
    r.series["standard_speedup"] = [1.0, 1.2, 2.0]
    r.series["network_cache_hit_ratio"] = [0, 90, 95]
    verdict, ev = figure_verdict("fig2", r)
    assert verdict == "holds"
    assert "2.50x" in ev


def test_figure_verdict_diverges_when_standard_wins():
    r = SeriesResult(name="fig2", x_label="processors", xs=[1, 8])
    r.series["cni_speedup"] = [1.0, 1.5]
    r.series["standard_speedup"] = [1.0, 2.5]
    verdict, _ = figure_verdict("fig2", r)
    assert verdict == "DIVERGES"


def test_fig14_verdict_window():
    r = SeriesResult(name="fig14", x_label="message_bytes", xs=[0, 4096])
    r.series["cni_latency_us"] = [10.0, 140.0]
    r.series["standard_latency_us"] = [20.0, 200.0]
    verdict, ev = figure_verdict("fig14", r)
    assert verdict == "holds"
    assert "30%" in ev


def test_table_verdict_overheads():
    t = TableResult(name="table3", columns=["time_cni_cycles",
                                            "time_standard_cycles"])
    t.add_row("synch_overhead", [1.0, 2.0])
    t.add_row("synch_delay", [3.0, 4.0])
    t.add_row("computation", [5.0, 5.0])
    t.add_row("total", [9.0, 11.0])
    verdict, ev = table_verdict("table3", t)
    assert verdict == "holds"
    assert "paper" in ev


def test_table5_verdict():
    t = TableResult(name="table5", columns=["pct_improvement"])
    for app in PAPER_TABLE5:
        t.add_row(app, [7.0])
    verdict, ev = table_verdict("table5", t)
    assert verdict == "holds"
    assert "jacobi" in ev


def test_render_mentions_every_experiment(tmp_path):
    p = tmp_path / "results.txt"
    p.write_text(SAMPLE)
    doc = render_experiments_md(parse_results_file(str(p)))
    for c in FIGURE_CLAIMS:
        assert f"## {c.exp_id}" in doc
    for t in ("table2", "table3", "table4", "table5"):
        assert f"## {t}" in doc
    assert "(not measured)" in doc  # paper column absent


def test_claims_cover_all_figures():
    ids = {c.exp_id for c in FIGURE_CLAIMS}
    assert ids == {f"fig{i}" for i in range(2, 15)}
    assert claim_for("fig2") is not None
    assert claim_for("table2") is None


def test_paper_tables_are_self_consistent():
    for name, table in PAPER_OVERHEAD_TABLES.items():
        for col in ("cni", "standard"):
            parts = sum(table[row][col] for row in
                        ("synch_overhead", "synch_delay", "computation"))
            assert parts == pytest.approx(table["total"][col], rel=0.02), name
