"""Tests for the generic parameter-sweep utility."""

import pytest

from repro.apps import JacobiConfig
from repro.harness import sweep_param


def tiny_workload():
    return JacobiConfig(n=32, iterations=2)


def test_sweep_basic_shape():
    r = sweep_param(
        "jacobi", tiny_workload(), "ni_freq_hz", [33e6, 66e6],
        nprocs=2,
    )
    assert r.xs == [33e6, 66e6]
    assert set(r.series) == {"cni_elapsed_ms", "standard_elapsed_ms"}
    for ys in r.series.values():
        assert all(v > 0 for v in ys)


def test_sweep_single_interface():
    r = sweep_param(
        "jacobi", tiny_workload(), "interrupt_latency_ns",
        [5000.0, 20000.0], nprocs=2, interfaces=("standard",),
    )
    assert list(r.series) == ["standard_elapsed_ms"]
    # a slower interrupt makes the interrupt-driven interface slower
    ys = r.get("standard_elapsed_ms")
    assert ys[1] > ys[0]


def test_sweep_speedup_metric_normalizes():
    r = sweep_param(
        "jacobi", tiny_workload(), "ni_freq_hz", [33e6, 66e6],
        nprocs=2, metric="speedup_vs_first", interfaces=("cni",),
    )
    assert r.get("cni_speedup_vs_first")[0] == pytest.approx(1.0)


def test_sweep_hit_ratio_metric():
    r = sweep_param(
        "jacobi", tiny_workload(), "message_cache_bytes",
        [8192, 65536], nprocs=2, metric="hit_ratio_pct",
        interfaces=("cni",),
    )
    ys = r.get("cni_hit_ratio_pct")
    assert 0 <= ys[0] <= 100
    assert ys[1] >= ys[0] - 3.0


def test_sweep_validates_inputs():
    with pytest.raises(AttributeError):
        sweep_param("jacobi", tiny_workload(), "warp_factor", [1])
    with pytest.raises(ValueError):
        sweep_param("jacobi", tiny_workload(), "ni_freq_hz", [33e6],
                    metric="vibes")


def test_sweep_rejects_empty_values():
    # Used to slip through to raw[0] and die with IndexError.
    with pytest.raises(ValueError, match="at least one value"):
        sweep_param("jacobi", tiny_workload(), "ni_freq_hz", [])
    with pytest.raises(ValueError, match="at least one value"):
        sweep_param("jacobi", tiny_workload(), "ni_freq_hz", [],
                    metric="speedup_vs_first")


def test_sweep_zero_baseline_is_a_value_error(monkeypatch):
    # Used to be a bare ZeroDivisionError out of the normalization loop.
    class ZeroStats:
        elapsed_ns = 0
        network_cache_hit_ratio = 0.0

    monkeypatch.setattr("repro.harness.sweeps.run_map",
                        lambda specs, jobs=None: [ZeroStats()] * len(specs))
    with pytest.raises(ValueError,
                       match="speedup_vs_first is undefined.*took 0 ms"):
        sweep_param("jacobi", tiny_workload(), "ni_freq_hz", [33e6, 66e6],
                    nprocs=2, metric="speedup_vs_first",
                    interfaces=("cni",))
