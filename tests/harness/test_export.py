"""Tests for CSV/JSON export."""

import json

import pytest

from repro.harness import SeriesResult, TableResult, to_csv, to_json, write_result


def series():
    r = SeriesResult(name="s", x_label="x", xs=[1.0, 2.0])
    r.add_point("a", 10.0)
    r.add_point("a", 20.0)
    return r


def table():
    t = TableResult(name="t", columns=["c1", "c2"])
    t.add_row("r", [1.5, 2.5])
    return t


def test_series_csv():
    text = to_csv(series())
    lines = text.strip().splitlines()
    assert lines[0] == "x,a"
    assert lines[1] == "1.0,10.0"
    assert lines[2] == "2.0,20.0"


def test_table_csv():
    text = to_csv(table())
    lines = text.strip().splitlines()
    assert lines[0] == "row,c1,c2"
    assert lines[1] == "r,1.5,2.5"


def test_series_json_roundtrip():
    doc = json.loads(to_json(series()))
    assert doc["kind"] == "series"
    assert doc["xs"] == [1.0, 2.0]
    assert doc["series"]["a"] == [10.0, 20.0]


def test_table_json_roundtrip():
    doc = json.loads(to_json(table()))
    assert doc["kind"] == "table"
    assert doc["rows"]["r"] == [1.5, 2.5]


def test_write_result_by_suffix(tmp_path):
    p_csv = tmp_path / "out.csv"
    p_json = tmp_path / "out.json"
    write_result(series(), str(p_csv))
    write_result(table(), str(p_json))
    assert p_csv.read_text().startswith("x,a")
    assert json.loads(p_json.read_text())["kind"] == "table"
    with pytest.raises(ValueError):
        write_result(series(), str(tmp_path / "out.txt"))


def test_export_type_errors():
    with pytest.raises(TypeError):
        to_csv("not a result")
    with pytest.raises(TypeError):
        to_json(42)
