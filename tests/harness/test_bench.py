"""The perf-regression checker in tools/bench.py (logic only — the
timing arms themselves run in CI via ``tools/bench.py --smoke``)."""

import importlib.util
import json
import os

import pytest

_BENCH = os.path.join(os.path.dirname(__file__), "..", "..", "tools",
                      "bench.py")


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench", _BENCH)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def doc(events_per_sec, total_s, smoke=True):
    return {
        "kind": "bench", "schema_version": 1, "smoke": smoke,
        "engine": {"events_per_sec": events_per_sec},
        "experiments": {"total_s": total_s},
    }


def write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def test_lookup_walks_dotted_keys(bench):
    assert bench._lookup(doc(123.0, 4.5), "engine.events_per_sec") == 123.0
    assert bench._lookup(doc(123.0, 4.5), "experiments.total_s") == 4.5


def test_within_threshold_passes(bench, tmp_path):
    old = write(tmp_path, "old.json", doc(1000.0, 10.0))
    assert bench.check_regression(doc(950.0, 10.5), old, 0.20) == 0


def test_throughput_drop_fails(bench, tmp_path):
    old = write(tmp_path, "old.json", doc(1000.0, 10.0))
    assert bench.check_regression(doc(700.0, 10.0), old, 0.20) == 1


def test_wallclock_growth_fails(bench, tmp_path):
    old = write(tmp_path, "old.json", doc(1000.0, 10.0))
    assert bench.check_regression(doc(1000.0, 15.0), old, 0.20) == 1


def test_improvement_never_fails(bench, tmp_path):
    old = write(tmp_path, "old.json", doc(1000.0, 10.0))
    assert bench.check_regression(doc(5000.0, 1.0), old, 0.20) == 0


def test_smoke_vs_full_is_not_comparable(bench, tmp_path):
    old = write(tmp_path, "old.json", doc(1000.0, 10.0, smoke=False))
    # Wildly regressed numbers, but the baseline is a different workload
    # set, so the check declines to judge rather than false-alarm.
    assert bench.check_regression(doc(1.0, 999.0, smoke=True), old, 0.20) == 0


def test_missing_keys_are_skipped(bench, tmp_path):
    old = write(tmp_path, "old.json",
                {"smoke": True, "engine": {}, "experiments": {}})
    assert bench.check_regression(doc(1.0, 999.0), old, 0.20) == 0


# -- the cpu-aware parallel.speedup gate ---------------------------------------

def doc_par(speedup, cores, smoke=True):
    d = doc(1000.0, 10.0, smoke=smoke)
    d["parallel"] = {"speedup": speedup, "effective_cores": cores}
    return d


def test_speedup_below_floor_fails_on_multicore(bench, tmp_path):
    old = write(tmp_path, "old.json", doc(1000.0, 10.0))
    # 0.84x on 2 cores is the pessimization this gate exists to catch
    assert bench.check_regression(doc_par(0.84, 2), old, 0.20) == 1


def test_speedup_at_floor_passes(bench, tmp_path):
    old = write(tmp_path, "old.json", doc(1000.0, 10.0))
    assert bench.check_regression(
        doc_par(bench.SPEEDUP_FLOOR, 2), old, 0.20) == 0


def test_speedup_on_one_core_is_informational(bench, tmp_path):
    # scheduling physics, not a regression: the gate must not fire
    old = write(tmp_path, "old.json", doc(1000.0, 10.0))
    assert bench.check_regression(doc_par(0.5, 1), old, 0.20) == 0


def test_speedup_relative_regression_vs_multicore_baseline(bench, tmp_path):
    old = write(tmp_path, "old.json", doc_par(3.0, 4))
    assert bench.check_regression(doc_par(1.5, 4), old, 0.20) == 1


def test_one_core_baseline_skips_relative_but_keeps_floor(bench, tmp_path):
    # a 1-core baseline's speedup is meaningless as a reference; the
    # absolute floor still applies to the current multi-core run
    old = write(tmp_path, "old.json", doc_par(0.84, 1))
    assert bench.check_regression(doc_par(1.8, 4), old, 0.20) == 0
    assert bench.check_regression(doc_par(0.9, 4), old, 0.20) == 1


def test_missing_parallel_arm_is_skipped(bench, tmp_path):
    old = write(tmp_path, "old.json", doc(1000.0, 10.0))
    assert bench.check_regression(doc(1000.0, 10.0), old, 0.20) == 0


def test_effective_cores_falls_back_to_cpu_count(bench, tmp_path):
    old = write(tmp_path, "old.json", doc(1000.0, 10.0))
    current = doc(1000.0, 10.0)
    current["cpu_count"] = 1
    current["parallel"] = {"speedup": 0.5}  # pre-effective_cores schema
    assert bench.check_regression(current, old, 0.20) == 0
