"""Tests for the SVG figure renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.harness import SeriesResult, render_series_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


def series(n=4):
    r = SeriesResult(name="demo fig", x_label="processors",
                     xs=[float(2 ** i) for i in range(n)])
    r.series["cni"] = [1.0 * (i + 1) for i in range(n)]
    r.series["standard"] = [0.8 * (i + 1) for i in range(n)]
    return r


def parse(svg: str):
    return ET.fromstring(svg)


def test_renders_valid_xml():
    root = parse(render_series_svg(series()))
    assert root.tag == f"{SVG_NS}svg"


def test_contains_one_polyline_per_series():
    root = parse(render_series_svg(series()))
    polylines = root.findall(f".//{SVG_NS}polyline")
    assert len(polylines) == 2
    # each polyline has one point per x value
    for p in polylines:
        assert len(p.attrib["points"].split()) == 4


def test_legend_and_labels_present():
    svg = render_series_svg(series(), y_label="speedup", title="Figure 2")
    assert "Figure 2" in svg
    assert "speedup" in svg
    assert "processors" in svg
    assert "cni" in svg and "standard" in svg


def test_series_subset_selection():
    root = parse(render_series_svg(series(), series=["cni"]))
    assert len(root.findall(f".//{SVG_NS}polyline")) == 1
    with pytest.raises(KeyError):
        render_series_svg(series(), series=["nope"])


def test_escapes_markup_in_names():
    r = series()
    r.name = "<b>evil</b>"
    svg = render_series_svg(r)
    assert "<b>" not in svg
    parse(svg)  # still valid


def test_empty_rejected():
    r = SeriesResult(name="empty", x_label="x", xs=[])
    with pytest.raises(ValueError):
        render_series_svg(r)


def test_constant_series_does_not_crash():
    r = SeriesResult(name="flat", x_label="x", xs=[1.0, 2.0])
    r.series["y"] = [5.0, 5.0]
    parse(render_series_svg(r))


def test_single_point():
    r = SeriesResult(name="pt", x_label="x", xs=[3.0])
    r.series["y"] = [7.0]
    parse(render_series_svg(r))


def test_coordinates_inside_viewbox():
    root = parse(render_series_svg(series(), width=640, height=420))
    for p in root.findall(f".//{SVG_NS}polyline"):
        for pair in p.attrib["points"].split():
            x, y = map(float, pair.split(","))
            assert 0 <= x <= 640
            assert 0 <= y <= 420
