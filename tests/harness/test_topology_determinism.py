"""Digest determinism on the new fabrics: a workload run on a fat-tree
or torus must produce bit-identical ``RunStats.digest()`` values whether
it executes in-process (``--jobs 1``) or in a worker pool — the same
gate the banyan fabric has carried since the executor landed."""

import pytest

from repro.apps import CollBenchConfig, JacobiConfig
from repro.harness import RunSpec, run_map
from repro.params import SimParams


@pytest.fixture(autouse=True)
def _force_pool(monkeypatch):
    """Exercise the real pool even on a 1-core host — the cpu-aware
    clamp would otherwise route jobs>1 inline (docs/parallel_runs.md)."""
    monkeypatch.setenv("REPRO_POOL_FORCE", "1")


def topo_specs(topology, nprocs):
    params = SimParams().replace(num_processors=nprocs, topology=topology)
    return [
        RunSpec("jacobi", params, iface,
                workload=JacobiConfig(n=32, iterations=2))
        for iface in ("cni", "standard")
    ] + [
        RunSpec("collbench", params, "cni",
                workload=CollBenchConfig(op="allreduce", rounds=2)),
    ]


@pytest.mark.parametrize("topology,nprocs", [
    ("fattree:k=4", 4),
    ("torus:2x2", 4),
    ("torus:2x2x2:adaptive", 8),
])
def test_jobs_1_and_jobs_2_digests_identical(topology, nprocs):
    specs = topo_specs(topology, nprocs)
    serial = run_map(specs, jobs=1, record=False)
    parallel = run_map(specs, jobs=2, record=False)
    assert [s.digest() for s in serial] == [s.digest() for s in parallel]


def test_net_metrics_survive_the_pool_round_trip():
    """Workers ship RunStats back as JSON; the fabric counters must
    arrive intact, not just the digest."""
    spec = topo_specs("torus:2x2", 4)[-1]
    stats = run_map([spec], jobs=2, record=False)[0]
    assert stats.metrics["net.crossings"] > 0
    assert stats.metrics["net.link_hops"] >= stats.metrics["net.crossings"]


def test_topologies_are_distinct_machines():
    """Same workload, three fabrics: three different digests (the
    topology is part of the simulated machine, not a view option)."""
    wl = JacobiConfig(n=32, iterations=2)

    def digest(topology):
        params = SimParams().replace(num_processors=4, topology=topology)
        spec = RunSpec("jacobi", params, "cni", wl)
        return run_map([spec], jobs=1, record=False)[0].digest()

    digests = {digest(t) for t in
               ("banyan:32", "fattree:k=4", "torus:2x2")}
    assert len(digests) == 3
