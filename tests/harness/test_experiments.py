"""Smoke + shape tests for the experiment harness at tiny scale."""

import pytest

from repro.apps import JacobiConfig, WaterConfig
from repro.harness import (
    EXPERIMENTS,
    QUICK,
    latency_microbenchmark,
    overhead_table_experiment,
    run_experiment,
    speedup_experiment,
    table1_parameters,
    unrestricted_cell_experiment,
)


def test_registry_covers_every_table_and_figure():
    expected = {f"fig{i}" for i in range(2, 15)} | {
        f"table{i}" for i in range(1, 6)
    } | {"faults", "collectives", "messaging", "failures"}
    assert set(EXPERIMENTS) == expected


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        run_experiment("fig99")


def test_table1_values():
    t = table1_parameters()
    assert t.cell("cpu_frequency_mhz", "value") == 166.0
    assert t.cell("message_cache_kb", "value") == 32.0


def test_speedup_experiment_tiny():
    r = speedup_experiment(
        "jacobi", JacobiConfig(n=32, iterations=3), procs=(1, 2),
        name="tiny",
    )
    assert r.xs == [1.0, 2.0]
    assert r.get("cni_speedup")[0] == pytest.approx(1.0)
    assert len(r.get("network_cache_hit_ratio")) == 2


def test_overhead_experiment_tiny():
    t = overhead_table_experiment(
        "water", WaterConfig(n_molecules=8, steps=1), nprocs=2
    )
    assert set(t.rows) == {"synch_overhead", "synch_delay", "computation",
                           "total"}
    for iface_col in t.columns:
        assert t.cell("total", iface_col) > 0
    # total is the sum of the parts
    for col in t.columns:
        parts = sum(t.cell(r, col) for r in
                    ("synch_overhead", "synch_delay", "computation"))
        assert t.cell("total", col) == pytest.approx(parts)


def test_latency_experiment_tiny():
    r = latency_microbenchmark([0, 1024])
    assert r.get("cni_latency_us")[1] > r.get("cni_latency_us")[0]
    assert r.get("standard_latency_us")[1] > r.get("cni_latency_us")[1]


def test_unrestricted_cell_tiny():
    t = unrestricted_cell_experiment(
        {"jacobi": JacobiConfig(n=32, iterations=3)}, nprocs=2
    )
    assert t.cell("jacobi", "pct_improvement") > 0


def test_fault_sweep_tiny():
    from repro.harness import fault_sweep_experiment

    r = fault_sweep_experiment(
        "jacobi", JacobiConfig(n=32, iterations=2), loss_rates=(0.0, 0.02),
        nprocs=2, name="tiny-faults",
    )
    assert r.x_label == "cell_loss_rate"
    assert r.xs == [0.0, 0.02]
    for iface in ("cni", "standard"):
        clean, lossy = r.get(f"{iface}_retransmits")
        assert clean == 0 and lossy > 0
        assert all(g > 0 for g in r.get(f"{iface}_goodput_mbps"))
        assert r.get(f"{iface}_completion_ms")[1] > \
            r.get(f"{iface}_completion_ms")[0]


def test_runner_cli_fault_plan_option(capsys):
    from repro.harness.runner import main

    rc = main(["faults", "--fault-plan", "seed=7;cell_loss(rate=0.002)"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "fault plan:" in out
    assert "cell_loss" in out


def test_quick_scale_is_quick():
    assert QUICK.jacobi_large.n <= 256
    assert max(QUICK.procs) <= 8


def test_runner_cli_lists_experiments(capsys):
    from repro.harness.runner import main
    rc = main([])
    out = capsys.readouterr().out
    assert rc == 2
    assert "fig14" in out


def test_runner_cli_runs_table1(capsys):
    from repro.harness.runner import main
    rc = main(["table1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "simulation-parameters" in out


def test_runner_cli_svg_and_csv_export(tmp_path, capsys):
    from repro.harness.runner import main

    out = tmp_path / "figs"
    rc = main(["fig14", "--svg", str(out), "--csv", str(out)])
    assert rc == 0
    assert (out / "fig14.svg").exists()
    assert (out / "fig14.csv").exists()


def test_runner_cli_option_requires_value():
    import pytest as _pytest
    from repro.harness.runner import main

    with _pytest.raises(SystemExit):
        main(["fig14", "--svg"])
