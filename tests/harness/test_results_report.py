"""Unit tests for harness result containers and reporting."""

import pytest

from repro.harness import SeriesResult, TableResult, ascii_plot, format_series, format_table


def series():
    r = SeriesResult(name="demo", x_label="x", xs=[1.0, 2.0, 4.0])
    for v in (1.0, 2.0, 3.0):
        r.add_point("up", v)
    for v in (9.0, 8.0, 7.0):
        r.add_point("down", v)
    return r


def test_series_add_and_get():
    r = series()
    assert r.get("up") == [1.0, 2.0, 3.0]
    r.validate()


def test_series_validate_catches_misalignment():
    r = series()
    r.add_point("up", 99.0)
    with pytest.raises(ValueError):
        r.validate()


def test_series_get_missing():
    with pytest.raises(KeyError):
        series().get("nope")


def test_table_rows_and_cells():
    t = TableResult(name="t", columns=["a", "b"])
    t.add_row("r1", [1.0, 2.0])
    assert t.cell("r1", "b") == 2.0
    with pytest.raises(ValueError):
        t.add_row("bad", [1.0])
    with pytest.raises(KeyError):
        t.cell("nope", "a")


def test_format_series_contains_data():
    text = format_series(series())
    assert "demo" in text
    assert "up" in text and "down" in text
    assert len(text.splitlines()) == 5  # header line + title + 3 rows


def test_format_table_contains_rows():
    t = TableResult(name="t", columns=["a"])
    t.add_row("alpha", [3.14])
    text = format_table(t)
    assert "alpha" in text and "3.14" in text


def test_notes_rendered():
    r = series()
    r.notes = "important caveat"
    assert "important caveat" in format_series(r)


def test_ascii_plot_shape():
    text = ascii_plot(series(), "up", height=5, width=20)
    lines = text.splitlines()
    assert len(lines) == 6
    assert any("*" in line for line in lines[1:])
