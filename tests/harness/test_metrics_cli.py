"""Tests for the metrics side of the harness: the MetricsLog collector,
the ``--metrics`` export path, and the ``metrics`` CLI subcommand."""

import json

import pytest

from repro.harness import GLOBAL_METRICS_LOG, MetricsLog
from repro.harness.metrics_cli import metrics_main
from repro.harness.runner import QUICK, main


# -- MetricsLog ----------------------------------------------------------------

def test_metrics_log_records_and_clears():
    log = MetricsLog()
    log.record("jacobi", "cni", 4, {"node0.x": 1}, message_bytes=512)
    assert len(log) == 1
    entry = log.entries[0]
    assert entry["app"] == "jacobi" and entry["nprocs"] == 4
    assert entry["message_bytes"] == 512
    assert entry["metrics"] == {"node0.x": 1}
    log.clear()
    assert len(log) == 0


def test_metrics_log_json_document():
    log = MetricsLog()
    log.record("water", "standard", 2, {"a": 1})
    doc = json.loads(log.to_json(name="fig6"))
    assert doc["kind"] == "metrics_log"
    assert doc["name"] == "fig6"
    assert doc["runs"][0]["interface"] == "standard"


def test_experiments_feed_the_global_log():
    from repro.harness import one_way_latency_ns
    from repro.params import SimParams

    GLOBAL_METRICS_LOG.clear()
    one_way_latency_ns(512, "cni", SimParams())
    assert len(GLOBAL_METRICS_LOG) == 1
    entry = GLOBAL_METRICS_LOG.entries[0]
    assert entry["app"] == "latency_microbench"
    assert entry["message_bytes"] == 512
    assert any(k.endswith("nic.mcache.hits") for k in entry["metrics"])
    GLOBAL_METRICS_LOG.clear()


# -- the `metrics` CLI subcommand ---------------------------------------------

def test_metrics_cli_prints_table_and_totals(capsys):
    assert metrics_main(["--nprocs", "2"], QUICK) == 0
    out = capsys.readouterr().out
    assert "per-node metrics" in out
    assert "node0" in out and "node1" in out
    assert "mc.hits" in out and "aih.disp" in out
    assert "cluster totals:" in out


def test_metrics_cli_writes_json(tmp_path, capsys):
    path = tmp_path / "m.json"
    assert metrics_main(
        ["--nprocs", "2", "--interface", "standard", "--json", str(path)],
        QUICK) == 0
    doc = json.loads(path.read_text())
    assert doc["meta"]["interface"] == "standard"
    assert any(k.endswith("rx.host_interrupts") for k in doc["metrics"])


def test_metrics_cli_rejects_unknown_app_and_args(capsys):
    with pytest.raises(SystemExit):
        metrics_main(["--app", "doom"], QUICK)
    assert metrics_main(["--frobnicate"], QUICK) == 2
    assert "--frobnicate" in capsys.readouterr().err


# -- runner --metrics ----------------------------------------------------------

def test_runner_exports_metrics_json_per_experiment(tmp_path, capsys):
    assert main(["fig14", "--metrics", str(tmp_path)]) == 0
    doc = json.loads((tmp_path / "fig14.metrics.json").read_text())
    assert doc["kind"] == "metrics_log" and doc["name"] == "fig14"
    # 6 message sizes x 2 interfaces
    assert len(doc["runs"]) == 12
    cni_runs = [r for r in doc["runs"] if r["interface"] == "cni"]
    assert all("message_bytes" in r for r in cni_runs)
    # every run carries per-node counters for both nodes
    for r in doc["runs"]:
        for nid in range(2):
            assert f"node{nid}.nic.tx.packets_sent" in r["metrics"]
