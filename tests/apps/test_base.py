"""Tests for the SharedArray access layer (runs_for correctness)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import SharedArray, SharedScalarTable
from repro.dsm import SharedSegment
from repro.memory import AddressSpace
from repro.params import SimParams
from repro.runtime import Cluster


def make_array(shape, dtype=np.float64):
    seg = SharedSegment(AddressSpace(page_size=4096, dsm_pages=256))
    return SharedArray(seg.alloc(shape, dtype=dtype), "t")


def expected_runs(arr: SharedArray, key):
    """Oracle: byte runs from numpy's own address arithmetic."""
    view = arr.data[key]
    base_ptr = arr.data.__array_interface__["data"][0]
    if np.isscalar(view) or view.ndim == 0:
        # recompute via a 1-element slice trick
        flat_index = np.ravel_multi_index(
            tuple(np.atleast_1d(np.arange(s)[k])[0] for s, k in
                  zip(arr.data.shape, key if isinstance(key, tuple) else (key,))),
            arr.data.shape,
        )
        return [(arr.base_vaddr + int(flat_index) * arr.itemsize,
                 arr.itemsize)]
    rows = view.reshape(-1, view.shape[-1]) if view.ndim > 1 else view[None, :]
    runs = []
    for row in rows:
        start = row.__array_interface__["data"][0] - base_ptr
        runs.append((arr.base_vaddr + start, row.shape[0] * arr.itemsize))
    # merge adjacent
    merged = []
    for vaddr, nbytes in runs:
        if merged and merged[-1][0] + merged[-1][1] == vaddr:
            merged[-1] = (merged[-1][0], merged[-1][1] + nbytes)
        else:
            merged.append((vaddr, nbytes))
    return merged


def normalize(runs):
    merged = []
    for vaddr, nbytes in sorted(runs):
        if merged and merged[-1][0] + merged[-1][1] == vaddr:
            merged[-1] = (merged[-1][0], merged[-1][1] + nbytes)
        else:
            merged.append((vaddr, nbytes))
    return merged


def test_full_2d_array_is_one_run():
    arr = make_array((8, 16))
    runs = arr.runs_for((slice(None), slice(None)))
    assert runs == [(arr.base_vaddr, 8 * 16 * 8)]


def test_row_selection_contiguous():
    arr = make_array((8, 16))
    runs = arr.runs_for(3)
    assert runs == [(arr.base_vaddr + 3 * 16 * 8, 16 * 8)]


def test_row_block_contiguous():
    arr = make_array((8, 16))
    runs = arr.runs_for((slice(2, 5), slice(None)))
    assert runs == [(arr.base_vaddr + 2 * 16 * 8, 3 * 16 * 8)]


def test_column_slice_one_run_per_row():
    arr = make_array((4, 16))
    runs = arr.runs_for((slice(None), slice(2, 6)))
    assert len(runs) == 4
    for r, (vaddr, nbytes) in enumerate(runs):
        assert vaddr == arr.base_vaddr + (r * 16 + 2) * 8
        assert nbytes == 4 * 8


def test_scalar_index():
    arr = make_array((4, 16))
    assert arr.runs_for((2, 5)) == [(arr.base_vaddr + (2 * 16 + 5) * 8, 8)]


def test_1d_slice():
    arr = make_array((64,))
    assert arr.runs_for(slice(10, 20)) == [(arr.base_vaddr + 80, 80)]


def test_empty_selection():
    arr = make_array((8, 8))
    assert arr.runs_for(slice(3, 3)) == []


def test_non_contiguous_array_rejected():
    seg = SharedSegment(AddressSpace(page_size=4096, dsm_pages=16))
    alloc = seg.alloc((8, 8))
    alloc.data = alloc.data.T  # type: ignore[misc]
    with pytest.raises(ValueError):
        SharedArray(alloc, "bad")


@given(
    rows=st.integers(1, 6),
    cols=st.integers(1, 20),
    r0=st.integers(0, 5),
    rlen=st.integers(1, 6),
    c0=st.integers(0, 19),
    clen=st.integers(1, 20),
)
@settings(max_examples=100, deadline=None)
def test_runs_match_numpy_oracle(rows, cols, r0, rlen, c0, clen):
    arr = make_array((rows, cols))
    key = (slice(min(r0, rows - 1), min(r0 + rlen, rows)),
           slice(min(c0, cols - 1), min(c0 + clen, cols)))
    if arr.data[key].size == 0:
        assert arr.runs_for(key) == []
        return
    got = normalize(arr.runs_for(key))
    want = normalize(expected_runs(arr, key))
    assert got == want
    # total bytes equal the selection's size
    assert sum(n for _, n in got) == arr.data[key].size * 8


def test_read_write_move_real_data():
    params = SimParams().replace(num_processors=1, dsm_address_space_pages=16)
    cluster = Cluster(params, interface="cni")
    arr = SharedArray(cluster.alloc_shared((4, 8)), "x")

    def kernel(ctx):
        yield from arr.write(ctx, (1, slice(None)), np.arange(8.0))
        got = yield from arr.read(ctx, (1, slice(2, 5)))
        assert got.tolist() == [2.0, 3.0, 4.0]
        yield from arr.update(ctx, (1, 0), lambda v: v + 41.0)
        assert arr.data[1, 0] == 41.0

    cluster.run(kernel)


def test_scalar_table():
    params = SimParams().replace(num_processors=1, dsm_address_space_pages=16)
    cluster = Cluster(params, interface="cni")
    table = SharedScalarTable(SharedArray(cluster.alloc_shared((4,)), "t"))

    def kernel(ctx):
        yield from table.set(ctx, 0, 5.0)
        v = yield from table.get(ctx, 0)
        assert v == 5.0
        new = yield from table.add(ctx, 0, -2.0)
        assert new == 3.0

    cluster.run(kernel)


def test_scalar_table_requires_1d():
    arr = make_array((4, 4))
    with pytest.raises(ValueError):
        SharedScalarTable(arr)
