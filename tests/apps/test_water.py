"""Tests for the Water benchmark."""

import numpy as np
import pytest

from repro.apps.water import (
    FRC,
    MOL_RECORD_DOUBLES,
    POS,
    VEL,
    WaterConfig,
    _my_molecules,
    initial_state,
    run_water,
    sequential_reference,
)
from repro.params import SimParams


def test_config_validation():
    with pytest.raises(ValueError):
        WaterConfig(n_molecules=1)
    with pytest.raises(ValueError):
        WaterConfig(n_molecules=8, steps=0)


def test_initial_state_shape_and_determinism():
    cfg = WaterConfig(n_molecules=27)
    a = initial_state(cfg)
    b = initial_state(cfg)
    assert a.shape == (27, MOL_RECORD_DOUBLES)
    assert np.array_equal(a, b)
    # molecules are spatially distinct
    d = a[:, POS][None] - a[:, POS][:, None]
    dist = np.sqrt((d ** 2).sum(-1)) + np.eye(27)
    assert dist.min() > 0.5


def test_molecule_partition_covers_all():
    got = []
    for r in range(5):
        got.extend(_my_molecules(33, r, 5))
    assert got == list(range(33))


def test_sequential_reference_moves_molecules():
    cfg = WaterConfig(n_molecules=8, steps=2)
    before = initial_state(cfg)
    after = sequential_reference(cfg)
    assert not np.allclose(before[:, POS], after[:, POS])
    assert np.all(np.isfinite(after))


@pytest.mark.parametrize("iface", ["cni", "standard"])
@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_parallel_matches_reference(iface, nprocs):
    cfg = WaterConfig(n_molecules=16, steps=2)
    params = SimParams().replace(num_processors=nprocs)
    stats, recs = run_water(params, iface, cfg)
    ref = sequential_reference(cfg)
    assert np.allclose(recs[:, POS], ref[:, POS])
    assert np.allclose(recs[:, VEL], ref[:, VEL])


def test_water_uses_locks_heavily():
    cfg = WaterConfig(n_molecules=16, steps=1)
    params = SimParams().replace(num_processors=4)
    stats, _ = run_water(params, "cni", cfg)
    # per-molecule locks: one acquire per molecule per step (owners
    # update their own molecules under the molecule's lock)
    assert stats.counters["dsm_acquires"] >= 16


def test_water_cni_not_slower_than_standard():
    cfg = WaterConfig(n_molecules=16, steps=1)
    params = SimParams().replace(num_processors=4)
    cni = run_water(params, "cni", cfg)[0]
    std = run_water(params, "standard", cfg)[0]
    assert cni.elapsed_ns <= std.elapsed_ns
