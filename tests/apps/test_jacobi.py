"""Tests for the Jacobi benchmark."""

import numpy as np
import pytest

from repro.apps.jacobi import (
    JacobiConfig,
    _strip,
    initialize_grid,
    run_jacobi,
    sequential_reference,
)
from repro.params import SimParams


def test_config_validation():
    with pytest.raises(ValueError):
        JacobiConfig(n=2)
    with pytest.raises(ValueError):
        JacobiConfig(n=64, iterations=0)


def test_strip_partition_covers_interior():
    n, nprocs = 130, 7
    rows = []
    for r in range(nprocs):
        lo, hi = _strip(n, r, nprocs)
        rows.extend(range(lo, hi))
    assert rows == list(range(1, n - 1))


def test_strip_balance():
    n, nprocs = 1026, 32
    sizes = [hi - lo for lo, hi in (_strip(n, r, nprocs) for r in range(nprocs))]
    assert max(sizes) - min(sizes) <= 1


def test_initialize_grid():
    g = initialize_grid(8)
    assert g[0].sum() == 800.0
    assert g[1:].sum() == 0.0


def test_sequential_reference_converges_toward_smooth():
    cfg = JacobiConfig(n=16, iterations=50)
    g = sequential_reference(cfg)
    # heat diffuses downward; rows are monotonically cooler
    means = g[1:-1, 1:-1].mean(axis=1)
    assert np.all(np.diff(means) <= 1e-9)


@pytest.mark.parametrize("iface", ["cni", "standard"])
@pytest.mark.parametrize("nprocs", [1, 3, 4])
def test_parallel_matches_reference(iface, nprocs):
    cfg = JacobiConfig(n=32, iterations=3)
    params = SimParams().replace(num_processors=nprocs)
    stats, final = run_jacobi(params, iface, cfg)
    assert np.allclose(final, sequential_reference(cfg))


def test_more_procs_than_rows_still_correct():
    cfg = JacobiConfig(n=8, iterations=2)  # 6 interior rows, 8 procs
    params = SimParams().replace(num_processors=8)
    stats, final = run_jacobi(params, "cni", cfg)
    assert np.allclose(final, sequential_reference(cfg))


def test_jacobi_speedup_with_processors():
    cfg = JacobiConfig(n=64, iterations=3)
    t1 = run_jacobi(SimParams().replace(num_processors=1), "cni", cfg)[0]
    t4 = run_jacobi(SimParams().replace(num_processors=4), "cni", cfg)[0]
    assert t4.elapsed_ns < t1.elapsed_ns


def test_jacobi_cni_not_slower_than_standard():
    cfg = JacobiConfig(n=64, iterations=3)
    params = SimParams().replace(num_processors=4)
    cni = run_jacobi(params, "cni", cfg)[0]
    std = run_jacobi(params, "standard", cfg)[0]
    assert cni.elapsed_ns <= std.elapsed_ns


def test_jacobi_hit_ratio_grows_with_iterations():
    params = SimParams().replace(num_processors=4)
    short = run_jacobi(params, "cni", JacobiConfig(n=64, iterations=2))[0]
    long = run_jacobi(params, "cni", JacobiConfig(n=64, iterations=8))[0]
    assert long.network_cache_hit_ratio > short.network_cache_hit_ratio
