"""Tests for the Cholesky benchmark and the synthetic matrices."""

import numpy as np
import pytest

from repro.apps.cholesky import CholeskyConfig, run_cholesky
from repro.apps.matrices import (
    BandedSPD,
    band_cholesky_reference,
    bcsstk14_like,
    bcsstk15_like,
    synthetic_fem_spd,
)
from repro.params import SimParams


def reconstruct(bands: np.ndarray, n: int, b: int) -> np.ndarray:
    L = np.zeros((n, n))
    for i in range(b + 1):
        idx = np.arange(n - i)
        L[idx + i, idx] = bands[: n - i, i]
    return L


# ------------------------------------------------------------- matrices --

def test_generator_validation():
    with pytest.raises(ValueError):
        synthetic_fem_spd(1, 1)
    with pytest.raises(ValueError):
        synthetic_fem_spd(10, 10)
    with pytest.raises(ValueError):
        BandedSPD(n=4, bandwidth=2, bands=np.zeros((4, 2)))


def test_generated_matrix_is_spd():
    m = synthetic_fem_spd(40, 6)
    dense = m.to_dense()
    assert np.allclose(dense, dense.T)
    assert np.linalg.eigvalsh(dense).min() > 0


def test_generator_determinism():
    a = synthetic_fem_spd(30, 5, seed=9)
    b = synthetic_fem_spd(30, 5, seed=9)
    assert np.array_equal(a.bands, b.bands)
    c = synthetic_fem_spd(30, 5, seed=10)
    assert not np.array_equal(a.bands, c.bands)


def test_bcsstk_presets_dimensions():
    m14 = bcsstk14_like(scale=1.0)
    m15 = bcsstk15_like(scale=1.0)
    assert m14.n == 1806
    assert m15.n == 3948
    assert m15.stored_entries > m14.stored_entries
    small = bcsstk14_like(scale=0.05)
    assert small.n < 120


def test_reference_factorization_correct():
    m = synthetic_fem_spd(48, 7, seed=1)
    bands = band_cholesky_reference(m)
    L = reconstruct(bands, m.n, m.bandwidth)
    assert np.allclose(L @ L.T, m.to_dense(), atol=1e-8)


# ------------------------------------------------------------- parallel --

def test_config_defaults_and_validation():
    cfg = CholeskyConfig()
    assert cfg.matrix.n > 0
    with pytest.raises(ValueError):
        CholeskyConfig(matrix=synthetic_fem_spd(32, 4), supernode=0)


def test_dependency_structure():
    cfg = CholeskyConfig(matrix=synthetic_fem_spd(64, 8), supernode=4)
    assert cfg.n_supernodes == 16
    assert cfg.predecessors(0) == 0
    # band reach 8 over supernodes of 4 -> two predecessors inland
    assert cfg.predecessors(5) == 2
    assert cfg.successors(0) == [1, 2]
    assert cfg.successors(cfg.n_supernodes - 1) == []


@pytest.mark.parametrize("iface", ["cni", "standard"])
@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_parallel_matches_reference(iface, nprocs):
    m = synthetic_fem_spd(48, 6, seed=4)
    cfg = CholeskyConfig(matrix=m, supernode=4)
    params = SimParams().replace(num_processors=nprocs)
    stats, bands = run_cholesky(params, iface, cfg)
    assert np.allclose(bands, band_cholesky_reference(m))


def test_factorization_actually_factorizes():
    m = synthetic_fem_spd(40, 5, seed=2)
    cfg = CholeskyConfig(matrix=m, supernode=4)
    stats, bands = run_cholesky(
        SimParams().replace(num_processors=2), "cni", cfg)
    L = reconstruct(bands, m.n, m.bandwidth)
    assert np.allclose(L @ L.T, m.to_dense(), atol=1e-8)


def test_bag_of_tasks_spreads_work():
    m = synthetic_fem_spd(96, 8, seed=5)
    cfg = CholeskyConfig(matrix=m, supernode=4)
    params = SimParams().replace(num_processors=4)
    stats, _ = run_cholesky(params, "cni", cfg)
    # every processor did some synchronization work
    from repro.engine import Category
    for acc in stats.per_processor:
        assert acc.ns[Category.SYNCH_OVERHEAD] > 0


def test_cholesky_cni_not_slower_than_standard():
    m = synthetic_fem_spd(48, 6, seed=6)
    cfg = CholeskyConfig(matrix=m, supernode=4)
    params = SimParams().replace(num_processors=4)
    cni = run_cholesky(params, "cni", cfg)[0]
    std = run_cholesky(params, "standard", cfg)[0]
    assert cni.elapsed_ns <= std.elapsed_ns
